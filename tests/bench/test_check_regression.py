"""In-suite tests for the CI regression gate (benchmarks/check_regression.py).

The acceptance bar: the checker must exit non-zero when fed a synthetically
degraded BENCH json, and pass on a faithful one.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _load_checker():
    path = os.path.join(REPO_ROOT, "benchmarks", "check_regression.py")
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


@pytest.fixture()
def chain_entry():
    manifest = checker.load_manifest(
        os.path.join(REPO_ROOT, "benchmarks", "manifest.json")
    )
    by_name = {e["name"]: e for e in manifest["benchmarks"]}
    return by_name["chain_depth"]


@pytest.fixture()
def baseline():
    with open(os.path.join(REPO_ROOT, "BENCH_chain_depth.json")) as fh:
        return json.load(fh)


class TestCompareEntry:
    def test_identical_json_passes(self, chain_entry, baseline):
        assert checker.compare_entry(chain_entry, baseline, dict(baseline)) == []

    def test_failed_correctness_gate_trips(self, chain_entry, baseline):
        fresh = dict(baseline)
        fresh["passed"] = False
        failures = checker.compare_entry(chain_entry, baseline, fresh)
        assert any("correctness gate" in f for f in failures)

    def test_accuracy_regression_trips(self, chain_entry, baseline):
        fresh = dict(baseline)
        fresh["amplitude_max_abs_diff"] = 1e-6  # way above the 1e-9 floor
        failures = checker.compare_entry(chain_entry, baseline, fresh)
        assert any("amplitude_max_abs_diff" in f for f in failures)

    def test_small_jitter_under_floor_passes(self, chain_entry, baseline):
        fresh = dict(baseline)
        fresh["amplitude_max_abs_diff"] = 5e-10  # below the absolute floor
        assert checker.compare_entry(chain_entry, baseline, fresh) == []

    def test_thirty_percent_tolerance(self, chain_entry):
        base = {"passed": True, "amplitude_max_abs_diff": 1e-7,
                "state_max_abs_diff": 0.0}
        ok = dict(base, amplitude_max_abs_diff=1.2e-7)       # +20%: fine
        bad = dict(base, amplitude_max_abs_diff=1.4e-7)      # +40%: regression
        assert checker.compare_entry(chain_entry, base, ok) == []
        failures = checker.compare_entry(chain_entry, base, bad)
        assert len(failures) == 1

    def test_missing_metric_trips(self, chain_entry, baseline):
        fresh = dict(baseline)
        del fresh["state_max_abs_diff"]
        failures = checker.compare_entry(chain_entry, baseline, fresh)
        assert any(
            "missing accuracy metric" in f and "state_max_abs_diff" in f
            for f in failures
        )

    def test_no_baseline_gates_on_floor(self, chain_entry):
        fresh = {"passed": True, "amplitude_max_abs_diff": 0.0,
                 "state_max_abs_diff": 2e-9}
        failures = checker.compare_entry(chain_entry, None, fresh)
        assert any("state_max_abs_diff" in f for f in failures)

    def test_wallclock_is_informational(self, chain_entry, baseline):
        fresh = dict(baseline)
        fresh["speedup"] = 0.01  # catastrophic slowdown: still not a gate
        assert checker.compare_entry(chain_entry, baseline, fresh) == []
        lines = checker.wallclock_report(chain_entry, baseline, fresh)
        assert any("speedup" in line for line in lines)


class TestMainExitCodes:
    def _write(self, tmp_path, payload, name="fresh.json"):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_degraded_json_exits_nonzero(self, tmp_path, baseline):
        degraded = dict(baseline)
        degraded["amplitude_max_abs_diff"] = 1e-3
        degraded["passed"] = False
        fresh = self._write(tmp_path, degraded)
        rc = checker.main(["--only", "chain_depth", "--fresh", f"chain_depth={fresh}"])
        assert rc == 1

    def test_faithful_json_exits_zero(self, tmp_path, baseline):
        fresh = self._write(tmp_path, dict(baseline))
        rc = checker.main(["--only", "chain_depth", "--fresh", f"chain_depth={fresh}"])
        assert rc == 0

    def test_informational_never_fails(self, tmp_path, baseline):
        degraded = dict(baseline)
        degraded["passed"] = False
        fresh = self._write(tmp_path, degraded)
        rc = checker.main([
            "--only", "chain_depth", "--fresh", f"chain_depth={fresh}",
            "--informational",
        ])
        assert rc == 0

    def test_missing_fresh_file_fails(self, tmp_path):
        rc = checker.main([
            "--only", "chain_depth",
            "--fresh", f"chain_depth={tmp_path}/does_not_exist.json",
        ])
        assert rc == 1


class TestManifest:
    def test_manifest_covers_all_committed_baselines(self):
        manifest = checker.load_manifest(
            os.path.join(REPO_ROOT, "benchmarks", "manifest.json")
        )
        listed = {e["baseline"] for e in manifest["benchmarks"]}
        committed = {
            f for f in os.listdir(REPO_ROOT)
            if f.startswith("BENCH_") and f.endswith(".json")
        }
        assert committed == listed

    def test_manifest_scripts_exist_and_disarm_speedup(self):
        manifest = checker.load_manifest(
            os.path.join(REPO_ROOT, "benchmarks", "manifest.json")
        )
        # plan_batch keeps its speedup gate ARMED in CI: it A/Bs dispatch
        # overhead within one process on one host, so unlike cross-host
        # wall-clock comparisons it is robust to runner noise, and the plan
        # pipeline's whole reason to exist is that threshold.  telemetry
        # gates on an overhead *ceiling* (same one-host robustness) and
        # shard_scale on the exactness of the per-shard memory split, and
        # service on exact counts parity (counts_mismatch_fraction == 0)
        # with latency/throughput purely informational, so none of those
        # has a --min-speedup knob at all.
        armed = {"plan_batch": "1.5"}
        for entry in manifest["benchmarks"]:
            assert os.path.exists(os.path.join(REPO_ROOT, entry["script"]))
            args = entry.get("args", [])
            if entry["name"] == "telemetry":
                assert "--max-overhead" in args
                assert args[args.index("--max-overhead") + 1] == "0.02"
            elif entry["name"] == "shard_scale":
                assert "--shards" in args
            elif entry["name"] == "service":
                assert "--jobs" in args
                assert "counts_mismatch_fraction" in entry["accuracy_metrics"]
            else:
                # min-speedup 0 makes the benchmark's `passed` accuracy-only
                assert "--min-speedup" in args
                expected = armed.get(entry["name"], "0")
                assert args[args.index("--min-speedup") + 1] == expected
            assert entry.get("accuracy_metrics"), entry["name"]
