"""Property tests: fused and unfused simulation are indistinguishable.

The stage-fusion engine must be a pure optimisation: for any circuit, any
block size and any executor, enabling ``fusion`` may change how many stages
exist but never the simulated state.  These tests drive both simulators with
the same random circuits (mixing diagonal, monomial and superposition gates)
and compare final states, including across incremental modifier sequences.
"""

import random

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.simulator import QTaskSimulator
from repro.parallel import SequentialExecutor, WorkStealingExecutor

from .conftest import (
    assert_states_close,
    circuit_levels,
    random_gate,
    random_level,
    random_levels,
    reference_state,
)

EXECUTORS = {
    "sequential": lambda: SequentialExecutor(),
    "workstealing": lambda: WorkStealingExecutor(2),
}


def simulate(n, levels, *, fusion, block_size, executor=None, max_fused_qubits=4):
    ckt = Circuit(n)
    sim = QTaskSimulator(
        ckt,
        block_size=block_size,
        executor=executor,
        fusion=fusion,
        max_fused_qubits=max_fused_qubits,
    )
    try:
        ckt.from_levels(levels)
        sim.update_state()
        return sim.state()
    finally:
        sim.close()


@pytest.mark.parametrize("executor_kind", sorted(EXECUTORS))
def test_fused_equals_unfused_on_random_circuits(executor_kind):
    """~50 random circuits per executor: identical final states (atol 1e-10)."""
    rng = random.Random(20230419 + sorted(EXECUTORS).index(executor_kind))
    for trial in range(50):
        n = rng.randint(2, 7)
        levels = random_levels(rng, n, rng.randint(1, 8))
        block_size = rng.choice([2, 4, 16, 64, 256])
        max_fused = rng.randint(2, 8)
        with EXECUTORS[executor_kind]() as ex:
            unfused = simulate(
                n, levels, fusion=False, block_size=block_size, executor=ex
            )
            fused = simulate(
                n,
                levels,
                fusion=True,
                block_size=block_size,
                executor=ex,
                max_fused_qubits=max_fused,
            )
        np.testing.assert_allclose(
            fused,
            unfused,
            atol=1e-10,
            rtol=0.0,
            err_msg=f"trial {trial}: n={n} B={block_size} cap={max_fused}",
        )


def test_fused_matches_dense_reference_on_random_circuits(rng):
    """Fused simulation also agrees with the independent dense ground truth."""
    for _ in range(15):
        n = rng.randint(2, 6)
        levels = random_levels(rng, n, rng.randint(1, 6))
        block_size = rng.choice([4, 16, 64])
        fused = simulate(n, levels, fusion=True, block_size=block_size)
        assert_states_close(fused, reference_state(n, levels), atol=1e-9)


def test_fused_equals_unfused_across_incremental_modifiers():
    """Random insert/remove sequences keep fused == unfused after each update."""
    rng = random.Random(777)
    for trial in range(12):
        n = rng.randint(3, 6)
        levels = random_levels(rng, n, rng.randint(2, 5))
        block_size = rng.choice([4, 16, 64])
        sims = []
        for fusion in (False, True):
            ckt = Circuit(n)
            sim = QTaskSimulator(ckt, block_size=block_size, fusion=fusion)
            ckt.from_levels(levels)
            sim.update_state()
            sims.append((ckt, sim))
        try:
            for step in range(rng.randint(2, 5)):
                op = rng.random()
                plan = None
                nets0 = sims[0][0].nets()
                if op < 0.4 and nets0:
                    pos = rng.randrange(len(nets0) + 1)
                    level = random_level(rng, n) or [random_gate(rng, range(n))]
                    plan = ("insert_net", pos, level)
                elif op < 0.7 and sims[0][0].gates():
                    plan = ("remove_gate", rng.randrange(len(sims[0][0].gates())))
                elif nets0:
                    plan = ("remove_net", rng.randrange(len(nets0)))
                if plan is None:
                    continue
                for ckt, sim in sims:
                    if plan[0] == "insert_net":
                        _, pos, level = plan
                        nets = ckt.nets()
                        after = nets[pos - 1] if pos > 0 else None
                        net = (
                            ckt.insert_net(after)
                            if after is not None
                            else ckt.prepend_net()
                        )
                        for g in level:
                            ckt.insert_gate(g, net)
                    elif plan[0] == "remove_gate":
                        ckt.remove_gate(ckt.gates()[plan[1]])
                    else:
                        ckt.remove_net(ckt.nets()[plan[1]])
                    sim.update_state()
                states = [sim.state() for _, sim in sims]
                np.testing.assert_allclose(
                    states[1], states[0], atol=1e-10, rtol=0.0,
                    err_msg=f"trial {trial} step {step} plan {plan[0]}",
                )
                ref = reference_state(n, circuit_levels(sims[0][0]))
                assert_states_close(states[1], ref, atol=1e-9)
        finally:
            for _, sim in sims:
                sim.close()
