"""Trajectory equivalence properties for dynamic circuits.

The acceptance bar of the dynamic-circuit subsystem:

* for seeded runs, the incremental engine -- under **every** combination of
  the fusion / block-directory / copy-on-write knobs and several block sizes
  -- produces amplitudes matching the dense reference oracle to 1e-10 per
  trajectory (the oracle replays the recorded collapse outcomes, so the
  comparison is deterministic);
* ``run_shots`` histograms on teleportation and a repeat-until-success-style
  branch circuit pass a chi-square test against the analytic outcome
  probabilities.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import QTask
from repro.baselines.dense import DenseReferenceSimulator
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator

from .conftest import random_level

# every incremental-engine knob combination the equivalence bar names
KNOB_MATRIX = [
    dict(fusion=False, block_directory=True, copy_on_write=True, block_size=4),
    dict(fusion=True, block_directory=True, copy_on_write=True, block_size=4),
    dict(fusion=False, block_directory=False, copy_on_write=True, block_size=4),
    dict(fusion=True, block_directory=False, copy_on_write=True, block_size=8),
    dict(fusion=False, block_directory=True, copy_on_write=False, block_size=4),
    dict(fusion=True, block_directory=True, copy_on_write=False, block_size=16),
    dict(fusion=False, block_directory=False, copy_on_write=False, block_size=2),
]


def build_dynamic_circuit(seed: int, num_qubits: int = 4) -> Circuit:
    """A random unitary/dynamic interleaving over ``num_qubits`` qubits."""
    rng = random.Random(seed)
    ckt = Circuit(num_qubits, num_clbits=num_qubits)
    for round_idx in range(3):
        for _ in range(2):
            level = random_level(rng, num_qubits, density=0.8)
            if level:
                ckt.append_level(level)
        net = ckt.insert_net()
        q = rng.randrange(num_qubits)
        kind = rng.choice(["measure", "reset", "measure"])
        if kind == "measure":
            ckt.insert_measure(net, q, q)
        else:
            ckt.insert_reset(net, q)
        # a conditioned correction on another qubit, driven by the clbit
        target = rng.choice([x for x in range(num_qubits) if x != q])
        cnet = ckt.insert_net()
        gate = rng.choice(["x", "z", "h"])
        ckt.insert_cgate(gate, cnet, target, condition=((q,), rng.randrange(2)))
    return ckt


@pytest.mark.parametrize("circuit_seed", [0, 1, 2])
@pytest.mark.parametrize("trajectory_seed", [7, 41])
def test_incremental_matches_dense_across_all_knobs(circuit_seed, trajectory_seed):
    """Every knob combination reproduces the dense oracle per trajectory."""
    ckt = build_dynamic_circuit(circuit_seed)
    reference_outcomes = None
    for knobs in KNOB_MATRIX:
        sim = QTaskSimulator(ckt, seed=trajectory_seed, **knobs)
        try:
            sim.update_state()
            state = sim.state()
            outcomes = sim.outcomes.recorded_outcomes()
            # equal seeds must give equal trajectories across configurations
            if reference_outcomes is None:
                reference_outcomes = outcomes
            else:
                assert outcomes == reference_outcomes, knobs
            dense = DenseReferenceSimulator(ckt, forced_outcomes=outcomes)
            dense.update_state()
            np.testing.assert_allclose(
                state, dense.state(), atol=1e-10,
                err_msg=f"knobs={knobs}",
            )
            assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-10)
        finally:
            sim.close()


@pytest.mark.parametrize("knobs", KNOB_MATRIX[:4])
def test_incremental_edits_match_dense_per_trajectory(knobs):
    """Retunes/inserts around measurements stay oracle-exact incrementally."""
    ckt = Circuit(4, num_clbits=2)
    n1, n2, n3, n4 = (ckt.insert_net() for _ in range(4))
    theta = ckt.insert_gate(Gate("ry", (0,), (0.9,)), n1)
    ckt.insert_gate(Gate("h", (1,)), n1)
    ckt.insert_gate(Gate("cx", (0, 2)), n2)
    ckt.insert_measure(n3, 0, 0)
    ckt.insert_cgate("x", n4, 3, condition=((0,), 1))
    sim = QTaskSimulator(ckt, seed=23, **knobs)
    try:
        sim.update_state()
        for step, angle in enumerate((1.7, 0.4, 2.9)):
            ckt.update_gate(theta, angle)
            report = sim.update_state()
            if knobs["copy_on_write"]:
                assert report.was_incremental
            dense = DenseReferenceSimulator(
                ckt, forced_outcomes=sim.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(sim.state(), dense.state(), atol=1e-10)
    finally:
        sim.close()


# ---------------------------------------------------------------------------
# chi-square acceptance on canonical dynamic circuits
# ---------------------------------------------------------------------------


def chi_square_ok(counts, expected_probs, shots):
    """Deterministic chi-square bound: statistic < mean + 5 sigma."""
    outcomes = sorted(expected_probs)
    observed = np.array([counts.get(o, 0) for o in outcomes], dtype=float)
    expected = np.array([expected_probs[o] * shots for o in outcomes])
    keep = expected > 0
    assert observed[~keep].sum() == 0, "impossible outcome observed"
    chi2 = float((((observed[keep] - expected[keep]) ** 2) / expected[keep]).sum())
    dof = int(keep.sum()) - 1
    return chi2 < dof + 5.0 * math.sqrt(2.0 * dof), (chi2, dof)


def build_teleportation(theta: float, **kwargs) -> QTask:
    """Teleport ``ry(theta)|0>`` from qubit 0 to qubit 2, then verify-measure.

    clbits: c0/c1 = Bell-measurement record, c2 = final Z measurement of the
    teleported state.
    """
    ckt = QTask(3, num_clbits=3, **kwargs)
    prep, bell, cnot, had, meas, fix_x, fix_z, verify = (
        ckt.insert_net() for _ in range(8)
    )
    ckt.insert_gate("ry", prep, 0, params=[theta])   # message
    ckt.insert_gate("h", prep, 1)                    # Bell pair (q1, q2)
    ckt.insert_gate("cx", bell, 1, 2)
    ckt.insert_gate("cx", cnot, 0, 1)                # Bell measurement basis
    ckt.insert_gate("h", had, 0)
    ckt.measure(meas, 0, 0)
    ckt.measure(meas, 1, 1)
    ckt.c_if("x", fix_x, 2, condition=((1,), 1))     # Pauli corrections
    ckt.c_if("z", fix_z, 2, condition=((0,), 1))
    ckt.measure(verify, 2, 2)
    return ckt


def test_teleportation_counts_chi_square():
    theta = 2 * math.pi / 3
    p1 = math.sin(theta / 2) ** 2
    shots = 1600
    ckt = build_teleportation(theta, seed=3, block_size=2)
    try:
        counts = ckt.run_shots(shots, seed=2024)
    finally:
        ckt.close()
    assert sum(counts.values()) == shots
    # c0/c1 uniform, c2 Bernoulli(p1) independent of them
    expected = {}
    for c2 in (0, 1):
        for c1 in (0, 1):
            for c0 in (0, 1):
                expected[f"{c2}{c1}{c0}"] = 0.25 * (p1 if c2 else 1.0 - p1)
    ok, detail = chi_square_ok(counts, expected, shots)
    assert ok, (detail, counts)


def test_teleportation_trajectory_matches_dense():
    """Measurement-conditioned correction reproduces the dense oracle."""
    ckt = build_teleportation(1.234, seed=11, block_size=2)
    try:
        ckt.update_state()
        dense = DenseReferenceSimulator(
            ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
        )
        dense.update_state()
        np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
    finally:
        ckt.close()


def build_rus_branch(**kwargs) -> QTask:
    """A repeat-until-success-style probabilistic branch with reset retry.

    Round 1: put q0 in superposition, measure into c0.  On failure (c0 == 1)
    the ancilla path resets q0 and retries once into c1.  The final
    measurement of q0 lands in c2.
    """
    ckt = QTask(2, num_clbits=3, **kwargs)
    r1, m1, fix, r2, retry, m2, final = (ckt.insert_net() for _ in range(7))
    ckt.insert_gate("h", r1, 0)
    ckt.measure(m1, 0, 0)
    ckt.c_if("x", fix, 1, condition=((0,), 1))   # flag the failure on q1
    ckt.reset(r2, 0)                             # retry from |0>
    ckt.insert_gate("h", retry, 0)
    ckt.measure(m2, 0, 1)
    ckt.measure(final, 1, 2)
    return ckt


def test_rus_branch_counts_chi_square():
    shots = 1600
    ckt = build_rus_branch(seed=9, block_size=2)
    try:
        counts = ckt.run_shots(shots, seed=555)
    finally:
        ckt.close()
    # c0 and c1 are independent fair coins; c2 mirrors c0 (the flag qubit)
    expected = {}
    for c2 in (0, 1):
        for c1 in (0, 1):
            for c0 in (0, 1):
                expected[f"{c2}{c1}{c0}"] = 0.25 if c2 == c0 else 0.0
    ok, detail = chi_square_ok(counts, expected, shots)
    assert ok, (detail, counts)


def test_run_shots_shares_unitary_prefix_copy_on_write():
    """Trajectory re-collapse re-simulates only the cone after the measure."""
    ckt = QTask(6, num_clbits=1, block_size=4, seed=1)
    nets = [ckt.insert_net() for _ in range(4)]
    for q in range(6):
        ckt.insert_gate("h", nets[0], q)
    for q in range(0, 6, 2):
        ckt.insert_gate("cx", nets[1], q, q + 1)
    ckt.insert_gate("rz", nets[2], 0, params=[0.3])
    ckt.measure(nets[3], 0, 0)
    ckt.update_state()
    child = ckt.fork()
    child.simulator.reset_trajectory((1, 0))
    report = child.update_state()
    # only the measure stage's partitions (plus sync) re-executed: the
    # unitary prefix is served copy-on-write from the parent
    assert report.affected_fraction < 0.5
    assert report.was_incremental
    child.close()
    ckt.close()
