"""Property tests for session forking (copy-on-write children).

The fork invariants:

* a fresh fork's state, expectations and samples are identical to the
  parent's, with zero amplitude copies (all blocks shared);
* edits on the child never perturb the parent, and edits on the parent
  never perturb the child -- in both directions, to machine precision;
* ``fork + retune`` equals a fresh build of the edited circuit to 1e-10,
  with fusion and the block directory independently on and off;
* ``memory_report()`` shows forked sessions *sharing* blocks: a fleet of
  forks owns (almost) nothing beyond the parent until it diverges, i.e.
  memory grows sublinearly in the number of forks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QTask
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.observables import dense_expectation

from .conftest import circuit_levels, reference_state

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: (fusion, block_directory) corners exercised for fork equivalence.
CONFIGS = [
    (False, True),
    (True, True),
    (False, False),
    (True, False),
]

N_QUBITS = 5
OBSERVABLE = "ZZ" + "I" * (N_QUBITS - 2)


def _build_workload(session):
    """An H layer, an entangling layer and two retunable rotation layers."""
    n = session.num_qubits
    net_h = session.insert_net()
    for q in range(n):
        session.insert_gate("h", net_h, q)
    net_cx = session.insert_net()
    for q in range(0, n - 1, 2):
        session.insert_gate("cx", net_cx, q, q + 1)
    net_rz = session.insert_net()
    rz_handles = [
        session.insert_gate("rz", net_rz, q, params=[0.3 + 0.1 * q])
        for q in range(n)
    ]
    net_rx = session.insert_net()
    rx_handles = [
        session.insert_gate("rx", net_rx, q, params=[0.8 - 0.05 * q])
        for q in range(n)
    ]
    return rz_handles, rx_handles


@pytest.mark.parametrize("fusion,block_directory", CONFIGS)
def test_fresh_fork_matches_parent_exactly(fusion, block_directory):
    with QTask(N_QUBITS, num_workers=1, fusion=fusion,
               block_directory=block_directory) as parent:
        _build_workload(parent)
        parent.update_state()
        parent_state = parent.state()
        child = parent.fork()
        try:
            assert child.is_fork and not parent.is_fork
            np.testing.assert_allclose(child.state(), parent_state, atol=1e-14)
            assert child.expectation(OBSERVABLE) == pytest.approx(
                parent.expectation(OBSERVABLE), abs=1e-12
            )
            np.testing.assert_array_equal(
                child.sample(64, seed=7), parent.sample(64, seed=7)
            )
        finally:
            child.close()


@pytest.mark.parametrize("fusion,block_directory", CONFIGS)
def test_fork_retune_equals_fresh_build(fusion, block_directory):
    """fork + update_gate == building the edited circuit from scratch."""
    with QTask(N_QUBITS, num_workers=1, fusion=fusion,
               block_directory=block_directory) as parent:
        rz_handles, rx_handles = _build_workload(parent)
        parent.update_state()
        child = parent.fork()
        try:
            for i, h in enumerate(rz_handles):
                child.update_gate(child.handle_for(h), 1.1 + 0.2 * i)
            for i, h in enumerate(rx_handles):
                child.update_gate(child.handle_for(h), 0.25 + 0.1 * i)
            report = child.update_state()
            assert report.was_incremental

            with QTask(N_QUBITS, num_workers=1, fusion=fusion,
                       block_directory=block_directory) as fresh:
                rz2, rx2 = _build_workload(fresh)
                for i, h in enumerate(rz2):
                    fresh.update_gate(h, 1.1 + 0.2 * i)
                for i, h in enumerate(rx2):
                    fresh.update_gate(h, 0.25 + 0.1 * i)
                fresh.update_state()
                np.testing.assert_allclose(
                    child.state(), fresh.state(), atol=1e-10
                )
                assert child.expectation(OBSERVABLE) == pytest.approx(
                    fresh.expectation(OBSERVABLE), abs=1e-10
                )
        finally:
            child.close()


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(0, 10_000), fork_first=st.booleans())
def test_edits_never_cross_fork_boundary(seed, fork_first):
    """Child edits leave the parent bit-identical, and vice versa."""
    rng = np.random.default_rng(seed)
    with QTask(4, num_workers=1, fusion=bool(seed % 2)) as parent:
        rz_handles, rx_handles = _build_workload(parent)
        if not fork_first:
            parent.update_state()
        child = parent.fork()  # flushes pending modifiers when fork_first
        try:
            parent_state = parent.state()
            parent_exp = parent.expectation(OBSERVABLE)
            child_net = child.insert_net()

            # -- child edits: retune + insert + remove
            child.update_gate(
                child.handle_for(rz_handles[0]), float(rng.uniform(0.1, 6.0))
            )
            child.insert_gate("h", child_net, 1)
            child.remove_gate(child.handle_for(rx_handles[-1]))
            child.update_state()

            np.testing.assert_array_equal(parent.state(), parent_state)
            assert parent.expectation(OBSERVABLE) == parent_exp

            # -- parent edits: the child must be equally unperturbed
            child_state = child.state()
            child_exp = child.expectation(OBSERVABLE)
            parent.update_gate(rz_handles[1], float(rng.uniform(0.1, 6.0)))
            parent_net = parent.insert_net()
            parent.insert_gate("x", parent_net, 0)
            parent.update_state()

            np.testing.assert_array_equal(child.state(), child_state)
            assert child.expectation(OBSERVABLE) == child_exp

            # Both sides still agree with their own dense ground truth.
            np.testing.assert_allclose(
                parent.state(),
                reference_state(4, circuit_levels(parent.circuit)),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                child.state(),
                reference_state(4, circuit_levels(child.circuit)),
                atol=1e-9,
            )
        finally:
            child.close()


def test_fork_of_fork_is_isolated():
    with QTask(4, num_workers=1) as parent:
        rz_handles, _ = _build_workload(parent)
        parent.update_state()
        child = parent.fork()
        grandchild = child.fork()
        try:
            grandchild.update_gate(grandchild.handle_for(
                child.handle_for(rz_handles[0])), 2.5)
            grandchild.update_state()
            np.testing.assert_allclose(
                grandchild.state(),
                reference_state(4, circuit_levels(grandchild.circuit)),
                atol=1e-9,
            )
            np.testing.assert_allclose(child.state(), parent.state(), atol=1e-14)
        finally:
            grandchild.close()
            child.close()


# ---------------------------------------------------------------------------
# memory sharing
# ---------------------------------------------------------------------------


def test_memory_report_shows_forks_sharing_blocks():
    """A fork fleet owns ~nothing until it diverges: sublinear memory."""
    num_forks = 8
    with QTask(6, num_workers=1, block_size=8) as parent:
        rz_handles, _ = _build_workload(parent)
        parent.update_state()
        parent_report = parent.memory_report()
        assert parent_report.shared_blocks == 0
        assert parent_report.owned_bytes == parent_report.allocated_bytes > 0

        forks = [parent.fork() for _ in range(num_forks)]
        try:
            for fork in forks:
                report = fork.memory_report()
                # Every materialised block references the parent's memory.
                assert report.allocated_bytes == parent_report.allocated_bytes
                assert report.shared_blocks == report.stored_blocks
                assert report.shared_bytes == report.allocated_bytes
                assert report.owned_bytes == 0
            # Fleet-wide footprint: one parent's worth of amplitudes, not
            # (num_forks + 1) of them.
            total_owned = parent_report.owned_bytes + sum(
                f.memory_report().owned_bytes for f in forks
            )
            assert total_owned == parent_report.allocated_bytes

            # The parent refcounts every exported block once per fork.
            refs = {}
            for stage in parent.simulator.graph.stages:
                for block, count in stage.store.exported_block_refs().items():
                    refs[(stage.uid, block)] = count
            assert refs and all(count == num_forks for count in refs.values())

            # Divergence: one fork rewrites its retuned cone and now owns
            # those blocks; the parent's refcounts drop accordingly.
            diverging = forks[0]
            diverging.update_gate(diverging.handle_for(rz_handles[0]), 3.0)
            diverging.update_state()
            diverged = diverging.memory_report()
            assert 0 < diverged.owned_bytes < diverged.allocated_bytes
            new_refs = {}
            for stage in parent.simulator.graph.stages:
                for block, count in stage.store.exported_block_refs().items():
                    new_refs[(stage.uid, block)] = count
            assert any(count == num_forks - 1 for count in new_refs.values())
            # The other forks still share everything.
            assert forks[1].memory_report().owned_bytes == 0
        finally:
            for fork in forks:
                fork.close()


def test_closing_a_fork_leaves_parent_usable():
    with QTask(4, num_workers=1) as parent:
        _build_workload(parent)
        parent.update_state()
        child = parent.fork()
        expected = parent.state()
        child.close()
        parent.update_state()
        np.testing.assert_allclose(parent.state(), expected, atol=1e-14)


# ---------------------------------------------------------------------------
# observables cache handoff
# ---------------------------------------------------------------------------


def test_fork_inherits_warm_observable_cache():
    with QTask(N_QUBITS, num_workers=1) as parent:
        _build_workload(parent)
        parent.update_state()
        expected = parent.expectation(OBSERVABLE)  # warm the cache
        warm = parent.simulator.observables.cached_partials
        assert warm > 0
        child = parent.fork()
        try:
            engine = child.simulator._observables
            assert engine is not None and engine.cached_partials == warm
            assert child.expectation(OBSERVABLE) == pytest.approx(
                expected, abs=1e-12
            )
            # The caches are independent: invalidating the child's leaves
            # the parent's untouched.
            engine.invalidate()
            assert parent.simulator.observables.cached_partials == warm
        finally:
            child.close()


def test_handle_for_rejects_foreign_and_non_fork_sessions():
    from repro.core.exceptions import CircuitError, StaleHandleError

    with QTask(3, num_workers=1) as parent:
        net = parent.insert_net()
        g = parent.insert_gate("h", net, 0)
        with pytest.raises(CircuitError):
            parent.handle_for(g)
        parent.update_state()
        child = parent.fork()
        try:
            late_net = parent.insert_net()
            late = parent.insert_gate("x", late_net, 1)
            with pytest.raises(StaleHandleError):
                child.handle_for(late)
            assert child.handle_for(g).gate == g.gate
        finally:
            child.close()


def test_fork_flushes_pending_modifiers():
    with QTask(3, num_workers=1) as parent:
        net = parent.insert_net()
        parent.insert_gate("h", net, 0)
        # No update_state() yet: fork must flush so the child inherits H|000>.
        child = parent.fork()
        try:
            amp = 1.0 / np.sqrt(2.0)
            np.testing.assert_allclose(
                child.state()[[0, 1]], [amp, amp], atol=1e-12
            )
            assert parent.simulator.last_update.affected_partitions > 0
        finally:
            child.close()


def test_fork_matches_dense_expectation_ground_truth():
    """Block-wise expectations on a retuned fork match dense evaluation."""
    with QTask(N_QUBITS, num_workers=1, fusion=True) as parent:
        rz_handles, _ = _build_workload(parent)
        parent.update_state()
        parent.expectation(OBSERVABLE)
        child = parent.fork()
        try:
            child.update_gate(child.handle_for(rz_handles[2]), 1.9)
            child.update_state()
            dense = dense_expectation(child.state(), OBSERVABLE)
            assert child.expectation(OBSERVABLE) == pytest.approx(
                dense, abs=1e-10
            )
        finally:
            child.close()
