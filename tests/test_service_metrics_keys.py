"""Golden-keys contract for the service layer's metric names.

Mirrors ``test_statistics_keys.py``: dashboards and the operations guide
(``docs/operations.md``) grab these names verbatim, so renaming or dropping
one must be a loud, deliberate act here -- not a silent drift.
"""

import pytest

from repro.service import Backend

BELL = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"

#: every metric a fresh Backend registers, before any job runs
GOLDEN_SERVICE_METRICS = {
    # counters
    "service.jobs_submitted",
    "service.jobs_completed",
    "service.jobs_failed",
    "service.jobs_rejected",
    "service.jobs_cancelled",
    "service.pool_hits",
    "service.pool_misses",
    "service.pool_evictions",
    # gauges
    "service.queue_depth",
    "service.active_jobs",
    "service.executor_load",
    "service.degraded",
    "service.update_p95_seconds",
    "service.pool_sessions",
    "service.pool_owned_bytes",
    # histograms
    "service.job_seconds",
    "service.queue_wait_seconds",
    # engine-latency rollup merged from job sessions (same name as the
    # per-session histogram so fleet dashboards aggregate both)
    "update.seconds",
}


@pytest.fixture(scope="module")
def backend():
    be = Backend({"max_concurrent_jobs": 1}, num_workers=1)
    yield be
    be.close()


def test_backend_registers_exactly_the_golden_metrics(backend):
    assert set(backend.telemetry.metrics.names()) == GOLDEN_SERVICE_METRICS


def test_metrics_survive_a_job_and_appear_in_prometheus(backend):
    backend.run(BELL, shots=8, seed=0).result(timeout=60)
    assert set(backend.telemetry.metrics.names()) == GOLDEN_SERVICE_METRICS
    text = backend.prometheus_text()
    for name in GOLDEN_SERVICE_METRICS:
        ident = "qtask_" + name.replace(".", "_")
        assert ident in text, f"{name} missing from prometheus_text()"


def test_pool_and_job_counters_moved(backend):
    m = backend.telemetry.metrics
    assert m.get("service.jobs_submitted").value >= 1
    assert m.get("service.jobs_completed").value >= 1
    assert m.get("service.pool_misses").value >= 1
    assert m.get("update.seconds").count >= 1
