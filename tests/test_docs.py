"""Tier-1 mirror of the CI docs job (``tools/check_docs.py``).

The docs are part of the contract: intra-repo links must resolve and the
service guide's code blocks must actually run.  Running the same checks
here means a doc-breaking refactor fails on a laptop, not first on CI.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

DOCUMENTS = sorted((REPO_ROOT / "docs").rglob("*.md")) + [REPO_ROOT / "README.md"]
EXECUTED = {REPO_ROOT / rel for rel in check_docs.EXECUTED_DOCS}


def test_docs_tree_exists():
    names = {p.name for p in DOCUMENTS}
    assert {"architecture.md", "service.md", "operations.md"} <= names


@pytest.mark.parametrize(
    "md_path", DOCUMENTS, ids=[str(p.relative_to(REPO_ROOT)) for p in DOCUMENTS]
)
def test_intra_repo_links_resolve(md_path):
    assert check_docs.check_links(md_path) == []


@pytest.mark.parametrize(
    "md_path", DOCUMENTS, ids=[str(p.relative_to(REPO_ROOT)) for p in DOCUMENTS]
)
def test_python_blocks_compile(md_path):
    assert check_docs.check_blocks(md_path, execute=False) == []


@pytest.mark.parametrize(
    "md_path", sorted(EXECUTED), ids=[p.name for p in sorted(EXECUTED)]
)
def test_service_guide_blocks_execute(md_path):
    assert check_docs.check_blocks(md_path, execute=True) == []
