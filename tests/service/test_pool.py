"""SessionPool: warm-hit accounting, budgets, eviction, lease pinning."""

import threading

import pytest

from repro.qtask import QTask
from repro.service import SessionPool
from repro.telemetry import MetricsRegistry


def make_factory(num_qubits=2, calls=None):
    def factory():
        if calls is not None:
            calls.append(1)
        session = QTask(num_qubits)
        net = session.insert_net()
        for q in range(num_qubits):
            session.insert_gate("h", net, q)
        return session
    return factory


def test_first_lease_is_miss_then_hits():
    registry = MetricsRegistry()
    pool = SessionPool(registry=registry)
    calls = []
    try:
        fork, hit = pool.lease("a", make_factory(calls=calls))
        assert hit is False
        fork.close()
        pool.release("a")
        fork2, hit2 = pool.lease("a", make_factory(calls=calls))
        assert hit2 is True
        fork2.close()
        pool.release("a")
        assert len(calls) == 1  # base built exactly once
        assert registry.get("service.pool_hits").value == 1
        assert registry.get("service.pool_misses").value == 1
    finally:
        pool.close()


def test_forks_are_isolated_from_base():
    pool = SessionPool()
    try:
        fork, _ = pool.lease("a", make_factory(num_qubits=1))
        # editing the fork must not perturb the warm base
        net = fork.insert_net()
        fork.insert_gate("x", net, 0)
        fork.update_state()
        fork.close()
        pool.release("a")
        fork2, hit = pool.lease("a", make_factory(num_qubits=1))
        assert hit is True
        assert fork2.num_gates == 1  # just the base's h, not the x
        fork2.close()
        pool.release("a")
    finally:
        pool.close()


def test_max_sessions_evicts_lru():
    pool = SessionPool(max_sessions=2)
    try:
        for key in ("a", "b", "c"):
            fork, _ = pool.lease(key, make_factory())
            fork.close()
            pool.release(key)
        assert len(pool) == 2
        assert "a" not in pool.keys()  # oldest evicted
        assert set(pool.keys()) == {"b", "c"}
    finally:
        pool.close()


def test_memory_budget_evicts_idle_sessions():
    registry = MetricsRegistry()
    pool = SessionPool(memory_budget_bytes=1, registry=registry)
    try:
        forka, _ = pool.lease("a", make_factory())
        forka.close()
        pool.release("a")
        forkb, _ = pool.lease("b", make_factory())
        forkb.close()
        pool.release("b")
        # every base owns > 1 byte, so only the most recent may survive
        assert pool.keys() == ["b"] or pool.keys() == []
        assert registry.get("service.pool_evictions").value >= 1
    finally:
        pool.close()


def test_leased_sessions_are_never_evicted():
    pool = SessionPool(max_sessions=1)
    try:
        forka, _ = pool.lease("a", make_factory())
        forkb, _ = pool.lease("b", make_factory())  # over budget, but a is leased
        assert set(pool.keys()) == {"a", "b"}
        forka.close()
        pool.release("a")  # now a is idle and the budget applies
        assert pool.keys() == ["b"]
        forkb.close()
        pool.release("b")
    finally:
        pool.close()


def test_unstable_sessions_evicted_first():
    pool = SessionPool(max_sessions=2)
    try:
        forka, _ = pool.lease("a", make_factory())
        forka.close()
        pool.release("a")
        forkb, _ = pool.lease("b", make_factory())
        forkb.close()
        pool.release("b")
        # mark "b" (the *most recent*) unstable: recovery events on its base
        entry_b = pool._entries["b"]
        entry_b.session.telemetry.events.emit("update.retry", attempt=1)
        entry_b.session.telemetry.events.emit("breaker.transition", to="open")
        forkc, _ = pool.lease("c", make_factory())
        forkc.close()
        pool.release("c")
        # instability outranks recency: b evicted even though a is older
        assert "b" not in pool.keys()
        assert "a" in pool.keys()
    finally:
        pool.close()


def test_concurrent_leases_build_base_once():
    calls = []
    lock = threading.Lock()

    def factory():
        with lock:
            calls.append(1)
        session = QTask(2)
        net = session.insert_net()
        session.insert_gate("h", net, 0)
        return session

    pool = SessionPool()
    results = []
    errors = []

    def worker():
        try:
            fork, hit = pool.lease("shared", factory)
            results.append(hit)
            fork.close()
            pool.release("shared")
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    try:
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(calls) == 1  # exactly one thread built the base
        assert results.count(False) == 1 and results.count(True) == 7
    finally:
        pool.close()


def test_stats_snapshot_shape():
    pool = SessionPool(max_sessions=4, memory_budget_bytes=None)
    try:
        fork, _ = pool.lease("a", make_factory())
        stats = pool.stats()
        assert stats["sessions"] == 1
        assert stats["max_sessions"] == 4
        (entry,) = stats["entries"]
        assert entry["key"] == "a"
        assert entry["leases"] == 1
        assert entry["owned_bytes"] > 0
        fork.close()
        pool.release("a")
    finally:
        pool.close()


def test_lease_after_close_raises():
    pool = SessionPool()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.lease("a", make_factory())
