"""Job lifecycle: state machine, result/timeout/cancel semantics."""

import threading

import pytest

from repro.service import (
    Backend,
    InvalidJobTransition,
    JobCancelledError,
    JobStatus,
    JobTimeoutError,
)

BELL = 'OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n'


@pytest.fixture()
def backend():
    be = Backend({"max_concurrent_jobs": 1, "max_queued_jobs": 8}, num_workers=1)
    yield be
    be.close()


def test_job_reaches_done_and_result_is_complete(backend):
    job = backend.run(BELL, shots=64, seed=1)
    result = job.result(timeout=60)
    assert job.status() is JobStatus.DONE
    assert job.done() and not job.running() and not job.cancelled()
    assert result.job_id == job.job_id
    assert result.tenant == "default"
    assert result.shots == 64
    assert sum(result.counts.values()) == 64
    assert result.seconds >= 0.0
    assert result.queue_seconds >= 0.0


def test_result_timeout_raises_typed_error(backend):
    gate = threading.Event()

    def stalled(session):
        net = session.insert_net()
        session.insert_gate("h", net, 0)
        gate.wait(10)

    job = backend.run(stalled, num_qubits=1, shots=4, key="stalled")
    with pytest.raises(JobTimeoutError):
        job.result(timeout=0.05)
    gate.set()
    job.result(timeout=60)  # finishes fine afterwards


def test_double_submit_is_invalid(backend):
    job = backend.run(BELL, shots=4)
    job.result(timeout=60)
    with pytest.raises(InvalidJobTransition):
        job.submit()


def test_cancel_queued_job(backend):
    release = threading.Event()

    def blocker(session):
        net = session.insert_net()
        session.insert_gate("h", net, 0)
        release.wait(10)

    try:
        head = backend.run(blocker, num_qubits=1, shots=4, key="blocker")
        tail = backend.run(BELL, shots=4)
        assert tail.cancel() is True
        assert tail.status() is JobStatus.CANCELLED
        assert tail.cancelled()
        with pytest.raises(JobCancelledError):
            tail.result(timeout=10)
        # cancelling again is a no-op returning False
        assert tail.cancel() is False
    finally:
        release.set()
    head.result(timeout=60)
    assert backend.status()["jobs"]["cancelled"] == 1


def test_cancel_finished_job_returns_false(backend):
    job = backend.run(BELL, shots=4, seed=3)
    job.result(timeout=60)
    assert job.cancel() is False
    assert job.status() is JobStatus.DONE


def test_job_error_propagates_through_result(backend):
    def broken(session):
        raise RuntimeError("builder exploded")

    job = backend.run(broken, num_qubits=1, shots=4, key="broken")
    with pytest.raises(RuntimeError, match="builder exploded"):
        job.result(timeout=60)
    assert job.status() is JobStatus.ERROR
    assert backend.status()["jobs"]["failed"] == 1


def test_failed_build_is_not_cached(backend):
    calls = []

    def flaky(session):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("first build fails")
        net = session.insert_net()
        session.insert_gate("x", net, 0)

    bad = backend.run(flaky, num_qubits=1, shots=4, key="flaky")
    with pytest.raises(RuntimeError):
        bad.result(timeout=60)
    good = backend.run(flaky, num_qubits=1, shots=4, seed=0, key="flaky")
    result = good.result(timeout=60)
    assert result.counts == {"1": 4}
    assert result.pool_hit is False  # rebuilt, not served from a cached error
