"""Backend facade: validation, admission control, parity, telemetry wiring."""

import threading

import numpy as np
import pytest

from repro import QTask
from repro.service import (
    Backend,
    BackendClosedError,
    BackendConfiguration,
    BackpressureError,
    CircuitValidationError,
    QueueFullError,
    memory_qubit_cap,
)

BELL = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n'
GHZ = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
DYNAMIC = (
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\n"
    "measure q[0] -> c[0];\nif (c==1) x q[1];\nmeasure q[1] -> c[1];\n"
)


def _wait_until(predicate, timeout=15.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not met in time")


# -- configuration ----------------------------------------------------------

def test_default_configuration_is_memory_derived():
    cfg = BackendConfiguration()
    assert cfg.n_qubits == memory_qubit_cap()
    assert cfg.n_qubits >= 1
    assert "h" in cfg.basis_gates and "cx" in cfg.basis_gates
    assert cfg.simulator and cfg.local


def test_memory_qubit_cap_scales_with_memory():
    # 16 GiB at 0.5 headroom -> 8 GiB for amplitudes -> 2^29 amplitudes
    assert memory_qubit_cap(16 << 30) == 29
    assert memory_qubit_cap(32 << 30) == 30
    assert memory_qubit_cap(1) == 1  # never below one qubit


def test_unknown_configuration_key_rejected():
    with pytest.raises(ValueError, match="unknown configuration key"):
        Backend({"max_qubits": 5})


def test_configuration_dict_roundtrip():
    cfg = BackendConfiguration.coerce({"max_shots": 128, "n_qubits": 10})
    assert cfg.max_shots == 128
    assert BackendConfiguration.coerce(cfg) is cfg
    assert BackendConfiguration.from_dict(cfg.as_dict()) == cfg


# -- validation -------------------------------------------------------------

@pytest.fixture(scope="module")
def backend():
    be = Backend(
        {"max_concurrent_jobs": 2, "n_qubits": 10, "max_shots": 4096},
        num_workers=2,
    )
    yield be
    be.close()


def test_too_many_qubits_rejected(backend):
    big = "OPENQASM 2.0;\nqreg q[11];\nh q[0];\n"
    with pytest.raises(CircuitValidationError, match="n_qubits"):
        backend.run(big, shots=1)


def test_shots_beyond_max_rejected(backend):
    with pytest.raises(CircuitValidationError, match="max_shots"):
        backend.run(BELL, shots=5000)


def test_gate_outside_basis_rejected():
    be = Backend({"basis_gates": ("h",), "max_concurrent_jobs": 1})
    try:
        with pytest.raises(CircuitValidationError, match="basis"):
            be.run(BELL, shots=1)
    finally:
        be.close()


def test_unparsable_qasm_rejected(backend):
    with pytest.raises(CircuitValidationError, match="unparsable"):
        backend.run("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n", shots=1)


def test_builder_without_num_qubits_rejected(backend):
    with pytest.raises(CircuitValidationError, match="num_qubits"):
        backend.run(lambda s: None, shots=1)


def test_closed_backend_rejects():
    be = Backend({"max_concurrent_jobs": 1})
    be.close()
    with pytest.raises(BackendClosedError):
        be.run(BELL, shots=1)


# -- results ----------------------------------------------------------------

def test_observable_and_state(backend):
    job = backend.run(BELL, observable="ZZ", return_state=True)
    result = job.result(timeout=60)
    assert result.expectation == pytest.approx(1.0)
    expect = np.zeros(4, dtype=complex)
    expect[0] = expect[3] = 1 / np.sqrt(2)
    np.testing.assert_allclose(result.statevector, expect, atol=1e-12)
    assert result.counts is None  # shots=0


def test_warm_pool_hit_visible_in_result_and_prometheus(backend):
    first = backend.run(GHZ, shots=16, seed=0).result(timeout=60)
    second = backend.run(GHZ, shots=16, seed=0).result(timeout=60)
    assert second.key == first.key
    assert second.pool_hit is True
    text = backend.prometheus_text()
    assert "qtask_service_pool_hits" in text
    assert "qtask_service_jobs_completed" in text


# -- concurrency parity (the acceptance criterion) --------------------------

def test_concurrent_jobs_match_sequential_bit_identical():
    """>= 8 concurrent jobs across >= 2 circuit families == sequential runs."""
    requests = []
    for i in range(10):
        src = [BELL, GHZ, DYNAMIC][i % 3]
        requests.append((src, 64 + i, 1000 + i))

    # sequential ground truth, fresh session per request
    expected = []
    for src, shots, seed in requests:
        session = QTask.from_qasm(src)
        session.update_state()
        if session.circuit.num_clbits > 0:
            expected.append(session.run_shots(shots, seed=seed))
        else:
            expected.append(session.counts(shots, seed=seed))
        session.close()

    be = Backend({"max_concurrent_jobs": 4}, num_workers=4)
    try:
        jobs = [None] * len(requests)
        errors = []

        def submit(i, src, shots, seed):
            try:
                jobs[i] = be.run(src, shots=shots, seed=seed, tenant=f"t{i % 2}")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i, *req))
            for i, req in enumerate(requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        for job, want in zip(jobs, expected):
            assert job.result(timeout=120).counts == want
        # warm-pool hits happened (3 families, 10 jobs)
        text = be.prometheus_text()
        hits = [l for l in text.splitlines()
                if l.startswith("qtask_service_pool_hits{")]
        assert hits and float(hits[0].rsplit(" ", 1)[1]) >= 7
    finally:
        be.close()


# -- admission control ------------------------------------------------------

def test_queue_full_rejection_typed_and_counted():
    release = threading.Event()

    def blocker(session):
        net = session.insert_net()
        session.insert_gate("h", net, 0)
        release.wait(15)

    be = Backend({"max_concurrent_jobs": 1, "max_queued_jobs": 2}, num_workers=1)
    accepted = []
    try:
        head = be.run(blocker, num_qubits=1, shots=2, key="b-head")
        accepted.append(head)
        _wait_until(lambda: head.running())
        with pytest.raises(QueueFullError) as info:
            for i in range(6):
                accepted.append(
                    be.run(blocker, num_qubits=1, shots=2, key=f"b{i}")
                )
        assert info.value.limit == 2
        assert info.value.queue_depth == 2
        release.set()
        for job in accepted:
            job.result(timeout=60)
        assert be.status()["jobs"]["rejected"] >= 1
    finally:
        release.set()
        be.close()


def test_p95_backpressure_shedding():
    release = threading.Event()

    def blocker(session):
        net = session.insert_net()
        session.insert_gate("h", net, 0)
        release.wait(15)

    be = Backend(
        {
            "max_concurrent_jobs": 1,
            "max_queued_jobs": 8,
            # any observed update latency exceeds this threshold
            "p95_reject_seconds": 1e-12,
        },
        num_workers=1,
    )
    try:
        # one completed job seeds the update.seconds rollup (build latency)
        be.run(BELL, shots=2, seed=0).result(timeout=60)
        # fill to the soft threshold (max_queued_jobs // 2 = 4)
        head = be.run(blocker, num_qubits=1, shots=2, key="head")
        _wait_until(lambda: head.running())
        queued = [be.run(BELL, shots=2) for _ in range(4)]
        with pytest.raises(BackpressureError) as info:
            be.run(BELL, shots=2)
        assert info.value.reason == "p95"
        assert info.value.p95_seconds > 0
        release.set()
        head.result(timeout=60)
        for job in queued:
            job.result(timeout=60)
    finally:
        release.set()
        be.close()


def test_degraded_backpressure_and_recovery():
    be = Backend(
        {"max_concurrent_jobs": 1, "max_queued_jobs": 4, "degraded_grace_jobs": 2},
        num_workers=1,
    )
    try:
        # a job whose session records a recovery event marks the backend degraded
        def troubled(session):
            net = session.insert_net()
            session.insert_gate("h", net, 0)
            session.telemetry.events.emit("update.retry", attempt=1)

        be.run(troubled, num_qubits=1, shots=2, key="troubled").result(timeout=60)
        assert be.status()["degraded"] is True
        # two clean jobs (degraded_grace_jobs) clear the flag
        be.run(BELL, shots=2).result(timeout=60)
        be.run(BELL, shots=2).result(timeout=60)
        assert be.status()["degraded"] is False
    finally:
        be.close()


# -- telemetry wiring -------------------------------------------------------

def test_tenant_rollups_accumulate_per_tenant():
    be = Backend({"max_concurrent_jobs": 2}, num_workers=2)
    try:
        for _ in range(2):
            be.run(BELL, shots=8, seed=1, tenant="alice").result(timeout=60)
        be.run(GHZ, shots=8, seed=1, tenant="bob").result(timeout=60)
        assert be.tenants() == ["alice", "bob"]
        alice = be.tenant_metrics("alice").as_dict()
        bob = be.tenant_metrics("bob").as_dict()
        # alice's first job built the BELL base: its warming update's
        # latency landed in her rollup; bob's GHZ build likewise in his
        assert alice["histograms"]["update.seconds"]["count"] >= 1
        assert bob["histograms"]["update.seconds"]["count"] >= 1
        assert "plan.updates_planned" in alice["counters"]
    finally:
        be.close()


def test_job_run_span_recorded_when_tracing():
    be = Backend({"max_concurrent_jobs": 1}, num_workers=1, tracing=True)
    try:
        be.run(BELL, shots=4, seed=0, tenant="traced").result(timeout=60)
        spans = [s for s in be.telemetry.tracer.spans() if s.name == "job.run"]
        assert len(spans) == 1
        assert spans[0].attrs["tenant"] == "traced"
    finally:
        be.close()


def test_status_snapshot_shape(backend):
    status = backend.status()
    assert status["backend_name"] == "qtask_statevector"
    assert set(status["jobs"]) == {
        "submitted", "completed", "failed", "rejected", "cancelled",
    }
    assert "pool" in status and "queue_depth" in status
