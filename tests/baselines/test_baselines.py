"""Tests for the baseline simulators and cross-simulator equivalence."""

import numpy as np
import pytest

from repro.baselines import (
    DenseReferenceSimulator,
    QiskitLikeSimulator,
    QulacsLikeSimulator,
)
from repro.core.circuit import Circuit
from repro.core.exceptions import CircuitError
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator

from ..conftest import assert_states_close, random_levels, reference_state


def build_circuit(n, levels):
    ckt = Circuit(n)
    ckt.from_levels(levels)
    return ckt


BELL = [[Gate("h", (1,))], [Gate("cx", (1, 0))]]


@pytest.mark.parametrize("cls", [QulacsLikeSimulator, QiskitLikeSimulator, DenseReferenceSimulator])
def test_baseline_bell_state(cls):
    sim = cls(build_circuit(2, BELL))
    sim.update_state()
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert_states_close(sim.state(), expected)
    sim.close()


@pytest.mark.parametrize("cls", [QulacsLikeSimulator, QiskitLikeSimulator])
def test_baseline_matches_dense_reference_on_random_circuits(cls, rng):
    for trial in range(3):
        n = 5
        levels = random_levels(rng, n, 6)
        ckt = build_circuit(n, levels)
        sim = cls(ckt)
        sim.update_state()
        assert_states_close(sim.state(), reference_state(n, levels))
        sim.close()


def test_qulacs_like_multithreaded_matches_single_threaded(rng):
    n = 6
    levels = random_levels(rng, n, 6)
    ckt = build_circuit(n, levels)
    s1 = QulacsLikeSimulator(ckt, num_workers=1)
    s4 = QulacsLikeSimulator(ckt, num_workers=4, chunk_size=8)
    s1.update_state()
    s4.update_state()
    assert_states_close(s1.state(), s4.state())
    s1.close()
    s4.close()


def test_all_simulators_agree_including_qtask(rng):
    n = 5
    levels = random_levels(rng, n, 7)
    ckt = build_circuit(n, levels)
    qulacs = QulacsLikeSimulator(ckt)
    qiskit = QiskitLikeSimulator(ckt)
    qtask = QTaskSimulator(ckt, block_size=8, num_workers=1)
    qulacs.update_state()
    qiskit.update_state()
    qtask.update_state()
    assert_states_close(qulacs.state(), qiskit.state())
    assert_states_close(qulacs.state(), qtask.state())
    qulacs.close()
    qiskit.close()
    qtask.close()


def test_baseline_resimulates_after_modification(rng):
    """Baselines have no incrementality: they replay the whole circuit."""
    n = 4
    levels = random_levels(rng, n, 5)
    ckt = build_circuit(n, levels)
    sim = QulacsLikeSimulator(ckt)
    r1 = sim.update_state()
    net = ckt.insert_net()
    ckt.insert_gate("x", net, 0)
    r2 = sim.update_state()
    assert not r2.was_incremental
    assert r2.gates_applied == r1.gates_applied + 1
    new_levels = [[h.gate for h in n_.gates] for n_ in ckt.nets() if n_.gates]
    assert_states_close(sim.state(), reference_state(n, new_levels))
    sim.close()


def test_baseline_queries():
    sim = QulacsLikeSimulator(build_circuit(2, BELL))
    sim.update_state()
    assert abs(sim.norm() - 1) < 1e-12
    assert abs(sim.probabilities().sum() - 1) < 1e-12
    assert abs(sim.amplitude(0)) > 0.5
    assert sim.allocated_bytes() == 2 * 4 * 16
    sim.close()


def test_baseline_state_returns_copy():
    sim = QulacsLikeSimulator(build_circuit(2, BELL))
    sim.update_state()
    out = sim.state()
    out[:] = 0
    assert abs(sim.amplitude(0)) > 0.5
    sim.close()


def test_baseline_empty_circuit_is_initial_state():
    sim = QiskitLikeSimulator(Circuit(3))
    sim.update_state()
    expected = np.zeros(8, dtype=complex)
    expected[0] = 1
    assert_states_close(sim.state(), expected)
    sim.close()


def test_dense_reference_rejects_large_circuits():
    with pytest.raises(CircuitError):
        DenseReferenceSimulator(Circuit(13))


def test_dense_reference_unitary_matches_composition():
    ckt = build_circuit(2, BELL)
    ref = DenseReferenceSimulator(ckt)
    u = ref.unitary()
    np.testing.assert_allclose(u @ u.conj().T, np.eye(4), atol=1e-12)
    psi = u @ np.array([1, 0, 0, 0], dtype=complex)
    ref.update_state()
    assert_states_close(ref.state(), psi)
    ref.close()


def test_qulacs_like_diagonal_fast_path_matches_dense(rng):
    """Diagonal gates take the in-place fast path; verify against the oracle."""
    n = 4
    levels = [[Gate("h", (q,)) for q in range(n)],
              [Gate("rz", (1,), (0.37,))],
              [Gate("cz", (0, 3))],
              [Gate("t", (2,))]]
    ckt = build_circuit(n, levels)
    sim = QulacsLikeSimulator(ckt)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(n, levels))
    sim.close()


def test_qulacs_like_monomial_fast_path_matches_dense(rng):
    n = 4
    levels = [[Gate("h", (q,)) for q in range(n)],
              [Gate("x", (0,))],
              [Gate("cx", (3, 1))],
              [Gate("swap", (0, 2))],
              [Gate("ccx", (0, 1, 3))]]
    ckt = build_circuit(n, levels)
    sim = QulacsLikeSimulator(ckt)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(n, levels))
    sim.close()
