"""Test package."""
