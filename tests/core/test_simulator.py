"""End-to-end correctness tests for the incremental simulator."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.parallel import SequentialExecutor, WorkStealingExecutor

from ..conftest import (
    assert_states_close,
    circuit_levels,
    random_levels,
    reference_state,
)


def make_sim(n, levels, **kwargs):
    ckt = Circuit(n)
    sim = QTaskSimulator(ckt, **kwargs)
    ckt.from_levels(levels)
    return ckt, sim


BELL_LEVELS = [[Gate("h", (1,))], [Gate("cx", (1, 0))]]


# ---------------------------------------------------------------------------
# full simulation
# ---------------------------------------------------------------------------


def test_bell_state(rng):
    ckt, sim = make_sim(2, BELL_LEVELS, block_size=2, num_workers=1)
    sim.update_state()
    expected = np.zeros(4, dtype=complex)
    expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
    assert_states_close(sim.state(), expected)
    sim.close()


def test_empty_circuit_is_initial_state():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=4, num_workers=1)
    sim.update_state()
    expected = np.zeros(8, dtype=complex)
    expected[0] = 1
    assert_states_close(sim.state(), expected)
    sim.close()


@pytest.mark.parametrize("block_size", [1, 2, 8, 64, 1024])
def test_full_simulation_matches_reference_across_block_sizes(rng, block_size):
    levels = random_levels(rng, 5, 6)
    ckt, sim = make_sim(5, levels, block_size=block_size, num_workers=1)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(5, levels))
    sim.close()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_full_simulation_matches_reference_across_workers(rng, workers):
    levels = random_levels(rng, 6, 5)
    ckt, sim = make_sim(6, levels, block_size=8, num_workers=workers)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(6, levels))
    sim.close()


def test_external_executor_is_not_closed():
    executor = SequentialExecutor()
    ckt = Circuit(2)
    sim = QTaskSimulator(ckt, block_size=2, executor=executor)
    ckt.from_levels(BELL_LEVELS)
    sim.update_state()
    sim.close()
    # the executor still works after the simulator released it
    executor.map(lambda x: x, [1, 2])


def test_executor_and_workers_are_mutually_exclusive():
    ckt = Circuit(2)
    with pytest.raises(Exception):
        QTaskSimulator(ckt, executor=SequentialExecutor(), num_workers=2)


def test_norm_preserved_on_random_circuits(rng):
    levels = random_levels(rng, 6, 8)
    ckt, sim = make_sim(6, levels, block_size=16, num_workers=1)
    sim.update_state()
    assert abs(sim.norm() - 1.0) < 1e-9
    sim.close()


def test_attach_simulator_to_prebuilt_circuit(rng):
    """The simulator adopts gates already present at attach time."""
    levels = random_levels(rng, 4, 4)
    ckt = Circuit(4)
    ckt.from_levels(levels)
    sim = QTaskSimulator(ckt, block_size=4, num_workers=1)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(4, levels))
    sim.close()


# ---------------------------------------------------------------------------
# incremental simulation
# ---------------------------------------------------------------------------


def test_incremental_insert_gate_matches_full(rng):
    levels = random_levels(rng, 4, 4)
    ckt, sim = make_sim(4, levels, block_size=4, num_workers=1)
    sim.update_state()
    # append a new net
    net = ckt.insert_net()
    ckt.insert_gate("cx", net, 0, 3)
    report = sim.update_state()
    assert report.was_incremental
    new_levels = circuit_levels(ckt)
    assert_states_close(sim.state(), reference_state(4, new_levels))
    sim.close()


def test_incremental_remove_gate_matches_full(rng):
    levels = random_levels(rng, 4, 5)
    ckt, sim = make_sim(4, levels, block_size=4, num_workers=1)
    sim.update_state()
    victim = ckt.gates()[len(ckt.gates()) // 2]
    ckt.remove_gate(victim)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(4, circuit_levels(ckt)))
    sim.close()


def test_incremental_insert_into_middle_net(rng):
    levels = random_levels(rng, 5, 5)
    ckt, sim = make_sim(5, levels, block_size=8, num_workers=1)
    sim.update_state()
    # insert a gate into an existing middle net on a free qubit
    for net in ckt.nets():
        used = net.qubits_in_use()
        free = [q for q in range(5) if q not in used]
        if free:
            ckt.insert_gate("x", net, free[0])
            break
    sim.update_state()
    assert_states_close(sim.state(), reference_state(5, circuit_levels(ckt)))
    sim.close()


def test_incremental_remove_whole_net(rng):
    levels = random_levels(rng, 4, 5)
    ckt, sim = make_sim(4, levels, block_size=4, num_workers=1)
    sim.update_state()
    ckt.remove_net(ckt.nets()[1])
    sim.update_state()
    assert_states_close(sim.state(), reference_state(4, circuit_levels(ckt)))
    sim.close()


def test_incremental_update_touches_fewer_partitions_than_full():
    """Modifying the tail of a deep circuit must not re-simulate everything."""
    n = 5
    levels = [[Gate("h", (q,)) for q in range(n)]] + [
        [Gate("cx", (q, (q + 1) % n))] for q in range(n)
    ] * 3
    ckt, sim = make_sim(n, levels, block_size=4, num_workers=1)
    full_report = sim.update_state()
    last_net = ckt.nets()[-1]
    victim = last_net.gates[0]
    ckt.remove_gate(victim)
    inc_report = sim.update_state()
    assert inc_report.affected_partitions < full_report.affected_partitions
    assert_states_close(sim.state(), reference_state(n, circuit_levels(ckt)))
    sim.close()


def test_multiple_modifiers_between_updates(rng):
    levels = random_levels(rng, 5, 6)
    ckt, sim = make_sim(5, levels, block_size=8, num_workers=1)
    sim.update_state()
    # batch: remove two gates, add a net with two gates, then one update call
    gates = ckt.gates()
    ckt.remove_gate(gates[0])
    ckt.remove_gate(gates[-1])
    net = ckt.insert_net()
    ckt.insert_gate("h", net, 0)
    ckt.insert_gate("cz", net, 1, 2)
    sim.update_state()
    assert_states_close(sim.state(), reference_state(5, circuit_levels(ckt)))
    sim.close()


def test_update_with_no_modifiers_is_a_noop():
    ckt, sim = make_sim(3, BELL_LEVELS + [[Gate("x", (2,))]], block_size=2, num_workers=1)
    sim.update_state()
    before = sim.state()
    report = sim.update_state()
    assert report.affected_partitions == 0
    assert_states_close(sim.state(), before)
    sim.close()


def test_incremental_sequence_of_many_iterations(rng):
    """A long randomized modifier/update sequence stays consistent."""
    n = 4
    levels = random_levels(rng, n, 6)
    ckt, sim = make_sim(n, levels, block_size=4, num_workers=1)
    sim.update_state()
    net_handles = ckt.nets()
    for it in range(12):
        gates = ckt.gates()
        if gates and rng.random() < 0.6:
            ckt.remove_gate(rng.choice(gates))
        target_net = rng.choice(net_handles)
        used = target_net.qubits_in_use()
        free = [q for q in range(n) if q not in used]
        if free:
            name = rng.choice(["h", "x", "t", "z"])
            ckt.insert_gate(name, target_net, rng.choice(free))
        sim.update_state()
        assert_states_close(sim.state(), reference_state(n, circuit_levels(ckt)))
    sim.close()


def test_rebuild_from_empty_to_full_level_by_level(rng):
    """The paper's incremental protocol: one update per net."""
    n = 5
    levels = random_levels(rng, n, 8)
    ckt = Circuit(n)
    sim = QTaskSimulator(ckt, block_size=8, num_workers=1)
    built = []
    for level in levels:
        net = ckt.insert_net()
        for g in level:
            ckt.insert_gate(g, net)
        built.append(level)
        sim.update_state()
        assert_states_close(sim.state(), reference_state(n, built))
    sim.close()


# ---------------------------------------------------------------------------
# copy-on-write ablation
# ---------------------------------------------------------------------------


def test_copy_on_write_disabled_gives_same_state(rng):
    levels = random_levels(rng, 4, 5)
    _, sim_cow = make_sim(4, levels, block_size=4, num_workers=1, copy_on_write=True)
    _, sim_dense = make_sim(4, levels, block_size=4, num_workers=1, copy_on_write=False)
    sim_cow.update_state()
    sim_dense.update_state()
    assert_states_close(sim_cow.state(), sim_dense.state())
    sim_cow.close()
    sim_dense.close()


def test_copy_on_write_uses_less_memory():
    n = 6
    levels = [[Gate("h", (5,))]] + [[Gate("cz", (5, q))] for q in range(4)]
    _, cow = make_sim(n, levels, block_size=4, num_workers=1, copy_on_write=True)
    _, dense = make_sim(n, levels, block_size=4, num_workers=1, copy_on_write=False)
    cow.update_state()
    dense.update_state()
    assert cow.memory_report().allocated_bytes < dense.memory_report().allocated_bytes
    cow.close()
    dense.close()


# ---------------------------------------------------------------------------
# queries and reports
# ---------------------------------------------------------------------------


def test_amplitude_probability_queries():
    ckt, sim = make_sim(2, BELL_LEVELS, block_size=2, num_workers=1)
    sim.update_state()
    assert abs(sim.amplitude(0) - 1 / np.sqrt(2)) < 1e-9
    assert abs(sim.probability(3) - 0.5) < 1e-9
    assert abs(sim.probabilities().sum() - 1.0) < 1e-9
    with pytest.raises(IndexError):
        sim.amplitude(4)
    sim.close()


def test_statistics_and_memory_report_keys():
    ckt, sim = make_sim(3, BELL_LEVELS, block_size=2, num_workers=1)
    report = sim.update_state()
    stats = sim.statistics()
    for key in ("num_stages", "num_nodes", "block_size", "num_updates", "num_workers"):
        assert key in stats
    assert report.total_partitions >= report.affected_partitions
    assert 0.0 <= report.affected_fraction <= 1.0
    mem = sim.memory_report()
    assert mem.allocated_bytes > 0
    sim.close()


def test_update_report_elapsed_positive():
    ckt, sim = make_sim(3, BELL_LEVELS, block_size=2, num_workers=1)
    report = sim.update_state()
    assert report.elapsed_seconds > 0
    sim.close()
