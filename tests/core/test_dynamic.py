"""Unit tests for dynamic circuits: measure, reset, classical control."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import QTask
from repro.baselines.dense import DenseReferenceSimulator
from repro.core.circuit import Circuit
from repro.core.classical import ClassicalRegister, OutcomeRecord
from repro.core.cow import BlockStore
from repro.core.exceptions import CircuitError, NetDependencyError
from repro.core.gates import Gate
from repro.core.kernels import ArrayReader, collapse_run, measured_masses
from repro.core.ops import CGate, MeasureOp, ResetOp, is_dynamic_op
from repro.core.simulator import QTaskSimulator


# ---------------------------------------------------------------------------
# OutcomeRecord
# ---------------------------------------------------------------------------


class TestOutcomeRecord:
    def test_keyed_draws_are_deterministic(self):
        a = OutcomeRecord(2, seed=7)
        b = OutcomeRecord(2, seed=7)
        outcomes_a = [a.choose(i, 0.5, 0.5) for i in range(20)]
        outcomes_b = [b.choose(i, 0.5, 0.5) for i in range(20)]
        assert outcomes_a == outcomes_b
        assert set(outcomes_a) == {0, 1}  # not constant for 20 fair draws

    def test_draw_order_independent_of_other_ops(self):
        # op 5's first draw is the same whether or not op 3 ever drew
        a = OutcomeRecord(1, seed=11)
        b = OutcomeRecord(1, seed=11)
        a.choose(3, 0.5, 0.5)
        assert a.choose(5, 0.5, 0.5) == b.choose(5, 0.5, 0.5)

    def test_deterministic_masses_ignore_randomness(self):
        rec = OutcomeRecord(1, seed=0)
        assert rec.choose(0, 1.0, 0.0) == 0
        assert rec.choose(1, 0.0, 1.0) == 1

    def test_zero_total_mass_raises(self):
        rec = OutcomeRecord(1, seed=0)
        with pytest.raises(ValueError):
            rec.choose(0, 0.0, 0.0)

    def test_forced_outcomes_win(self):
        rec = OutcomeRecord(1, seed=3, forced={0: 1})
        assert rec.choose(0, 1.0, 0.0) == 1  # would be 0 by mass
        assert rec.outcome_of(0) == 1

    def test_bits_and_values(self):
        rec = OutcomeRecord(3)
        rec.set_bit(0, 1)
        rec.set_bit(2, 1)
        assert rec.value_of((0, 1, 2)) == 0b101
        assert rec.bitstring(range(3)) == "101"
        assert rec.get_bit(1) == 0

    def test_reseed_clears_state(self):
        rec = OutcomeRecord(1, seed=1)
        rec.set_bit(0, 1)
        rec.choose(0, 0.5, 0.5)
        rec.reseed(2)
        assert rec.get_bit(0) == 0
        assert rec.outcome_of(0) is None

    def test_clone_is_independent(self):
        rec = OutcomeRecord(2, seed=9)
        rec.set_bit(0, 1)
        child = rec.clone()
        child.set_bit(1, 1)
        assert rec.get_bit(1) == 0
        assert child.get_bit(0) == 1
        # the clone re-draws from the start of each keyed stream
        assert child.choose(0, 0.5, 0.5) == OutcomeRecord(2, seed=9).choose(
            0, 0.5, 0.5
        )

    def test_composite_seed_folding(self):
        a = OutcomeRecord(1, seed=(5, 0))
        b = OutcomeRecord(1, seed=(5, 1))
        assert a.seed != b.seed


class TestClassicalRegister:
    def test_bits_and_indexing(self):
        reg = ClassicalRegister("c", offset=2, size=3)
        assert reg.bits == (2, 3, 4)
        assert reg[0] == 2 and reg[2] == 4
        assert len(reg) == 3
        with pytest.raises(IndexError):
            reg[3]


# ---------------------------------------------------------------------------
# circuit-level structure
# ---------------------------------------------------------------------------


class TestCircuitStructure:
    def test_register_declaration(self):
        ckt = Circuit(2, num_clbits=1)
        reg = ckt.add_classical_register("m", 2)
        assert ckt.num_clbits == 3
        assert reg.offset == 1 and reg.size == 2
        assert ckt.creg("m") is reg
        with pytest.raises(CircuitError):
            ckt.add_classical_register("m", 1)
        with pytest.raises(CircuitError):
            ckt.creg("nope")

    def test_clbit_range_validated(self):
        ckt = Circuit(2, num_clbits=1)
        net = ckt.insert_net()
        with pytest.raises(CircuitError):
            ckt.insert_measure(net, 0, 5)

    def test_net_invariant_covers_clbits(self):
        ckt = Circuit(3, num_clbits=2)
        net = ckt.insert_net()
        ckt.insert_measure(net, 0, 0)
        # same clbit, different qubit: still a within-net dependency
        with pytest.raises(NetDependencyError):
            ckt.insert_measure(net, 1, 0)
        # conditioned on the clbit a net-mate writes: dependency too
        with pytest.raises(NetDependencyError):
            ckt.insert_cgate("x", net, 2, condition=((0,), 1))
        # a disjoint clbit is fine
        ckt.insert_measure(net, 1, 1)

    def test_op_index_program_order_and_clone(self):
        ckt = Circuit(2, num_clbits=2)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        m0 = ckt.insert_measure(n1, 0, 0)
        r0 = ckt.insert_reset(n1, 1)
        c0 = ckt.insert_cgate("x", n2, 1, condition=((0,), 1))
        assert [h.gate.op_index for h in (m0, r0, c0)] == [0, 1, 2]
        clone, gate_map, _ = ckt.clone()
        assert clone.num_clbits == 2
        assert [h.gate.op_index for h in clone.dynamic_handles()] == [0, 1, 2]
        # new ops inserted into the clone continue the numbering
        n3 = clone.insert_net()
        m = clone.insert_measure(n3, 0, 1)
        assert m.gate.op_index == 3

    def test_update_gate_rejects_dynamic_ops(self):
        ckt = Circuit(1, num_clbits=1)
        net = ckt.insert_net()
        h = ckt.insert_measure(net, 0, 0)
        with pytest.raises(CircuitError):
            ckt.update_gate(h, 0.5)

    def test_cgate_validation(self):
        with pytest.raises(ValueError):
            CGate(Gate("x", (0,)), (), 0)
        with pytest.raises(ValueError):
            CGate(Gate("x", (0,)), (0, 0), 1)
        with pytest.raises(ValueError):
            CGate(Gate("x", (0,)), (0,), 2)
        with pytest.raises(TypeError):
            CGate("x", (0,), 0)

    def test_is_dynamic_op(self):
        assert is_dynamic_op(MeasureOp(0, 0))
        assert is_dynamic_op(ResetOp(0))
        assert is_dynamic_op(CGate(Gate("x", (0,)), (0,), 1))
        assert not is_dynamic_op(Gate("x", (0,)))


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


class TestCollapseKernels:
    @pytest.mark.parametrize("qubit", [0, 1, 2, 3])
    @pytest.mark.parametrize("block_size", [2, 4, 16])
    def test_measured_masses_match_dense(self, np_rng, qubit, block_size):
        n = 4
        psi = np_rng.normal(size=1 << n) + 1j * np_rng.normal(size=1 << n)
        psi /= np.linalg.norm(psi)
        reader = ArrayReader(psi)
        p0, p1 = measured_masses(reader, qubit, 1 << n, block_size)
        idx = np.arange(1 << n)
        probs = np.abs(psi) ** 2
        assert p0 == pytest.approx(probs[(idx >> qubit) & 1 == 0].sum(), abs=1e-12)
        assert p1 == pytest.approx(probs[(idx >> qubit) & 1 == 1].sum(), abs=1e-12)
        assert p0 + p1 == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("move", [False, True])
    @pytest.mark.parametrize("outcome", [0, 1])
    @pytest.mark.parametrize("qubit", [0, 2, 3])
    def test_collapse_run_matches_dense(self, np_rng, qubit, outcome, move):
        n = 4
        dim = 1 << n
        block_size = 4
        psi = np_rng.normal(size=dim) + 1j * np_rng.normal(size=dim)
        psi /= np.linalg.norm(psi)
        reader = ArrayReader(psi)
        idx = np.arange(dim)
        bits = (idx >> qubit) & 1
        mass = float((np.abs(psi) ** 2)[bits == outcome].sum())
        scale = 1.0 / math.sqrt(mass)
        store = BlockStore(dim, block_size)
        for lo in range(0, dim, block_size):
            collapse_run(
                reader, store, lo, lo + block_size - 1, qubit, outcome, scale,
                move=move,
            )
        got = np.concatenate([store.get_block(b) for b in range(dim // block_size)])
        if not move:
            expect = np.where(bits == outcome, psi * scale, 0)
        else:
            expect = np.zeros_like(psi)
            keep = bits == 0
            expect[keep] = psi[idx[keep] | (outcome << qubit)] * scale
        np.testing.assert_allclose(got, expect, atol=1e-12)
        assert np.linalg.norm(got) == pytest.approx(1.0, abs=1e-12)


# ---------------------------------------------------------------------------
# end-to-end collapse semantics
# ---------------------------------------------------------------------------


def build_qtask(n, clbits, **kwargs):
    kwargs.setdefault("block_size", 4)
    return QTask(n, num_clbits=clbits, **kwargs)


class TestMeasureStage:
    def test_deterministic_outcome_one(self):
        ckt = build_qtask(2, 1, seed=0)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("x", n1, 0)
        ckt.measure(n2, 0, 0)
        ckt.update_state()
        assert ckt.outcomes.get_bit(0) == 1
        np.testing.assert_allclose(np.abs(ckt.state()), [0, 1, 0, 0], atol=1e-12)
        ckt.close()

    def test_bell_collapse_is_correlated_and_normalised(self):
        for seed in range(6):
            ckt = build_qtask(2, 2, seed=seed)
            n1, n2, n3 = (ckt.insert_net() for _ in range(3))
            ckt.insert_gate("h", n1, 0)
            ckt.insert_gate("cx", n2, 0, 1)
            ckt.measure(n3, 0, 0)
            ckt.measure(n3, 1, 1)
            ckt.update_state()
            b0, b1 = ckt.outcomes.get_bit(0), ckt.outcomes.get_bit(1)
            assert b0 == b1  # perfectly correlated
            state = ckt.state()
            assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-12)
            expect = np.zeros(4)
            expect[b0 * 3] = 1.0
            np.testing.assert_allclose(np.abs(state), expect, atol=1e-12)
            ckt.close()

    def test_measurement_invalidates_observable_cache(self):
        ckt = build_qtask(2, 1, seed=2)
        n1 = ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        ckt.update_state()
        assert ckt.expectation("IZ") == pytest.approx(0.0, abs=1e-12)
        n2 = ckt.insert_net()
        ckt.measure(n2, 0, 0)
        ckt.update_state()
        sign = 1.0 - 2.0 * ckt.outcomes.get_bit(0)
        assert ckt.expectation("IZ") == pytest.approx(sign, abs=1e-12)
        ckt.close()


class TestResetStage:
    def test_reset_definite_one(self):
        ckt = build_qtask(1, 0, seed=0)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("x", n1, 0)
        ckt.reset(n2, 0)
        ckt.update_state()
        np.testing.assert_allclose(np.abs(ckt.state()), [1, 0], atol=1e-12)
        ckt.close()

    def test_reset_entangled_collapses_partner(self):
        # Bell pair, then reset qubit 0: qubit 1 collapses to the outcome
        for seed in range(5):
            ckt = build_qtask(2, 0, seed=seed)
            n1, n2, n3 = (ckt.insert_net() for _ in range(3))
            ckt.insert_gate("h", n1, 0)
            ckt.insert_gate("cx", n2, 0, 1)
            handle = ckt.reset(n3, 0)
            ckt.update_state()
            state = ckt.state()
            outcome = ckt.outcomes.outcome_of(handle.gate.op_index)
            expect = np.zeros(4)
            expect[outcome << 1] = 1.0  # q0 always 0, q1 = outcome
            np.testing.assert_allclose(np.abs(state), expect, atol=1e-12)
            ckt.close()


class TestClassicalControl:
    @pytest.mark.parametrize("gate,qubits", [("x", (1,)), ("z", (1,)),
                                             ("h", (1,)), ("cx", (1, 0))])
    def test_condition_false_is_identity(self, gate, qubits):
        ckt = build_qtask(2, 1, seed=0)
        n1 = ckt.insert_net()
        # c0 stays 0, condition wants 1: gate must not apply
        ckt.c_if(gate, n1, *qubits, condition=((0,), 1))
        ckt.update_state()
        expect = np.zeros(4)
        expect[0] = 1.0
        np.testing.assert_allclose(np.abs(ckt.state()), expect, atol=1e-12)
        ckt.close()

    @pytest.mark.parametrize("gate,qubits", [("x", (1,)), ("h", (1,)),
                                             ("cx", (1, 0))])
    def test_condition_true_applies_gate(self, gate, qubits):
        ckt = build_qtask(2, 1, seed=0)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        ckt.insert_gate("x", n1, 0)
        ckt.measure(n2, 0, 0)      # deterministically 1
        ckt.c_if(gate, n3, *qubits, condition=((0,), 1))
        ckt.update_state()
        dense = DenseReferenceSimulator(
            ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
        )
        dense.update_state()
        np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-12)
        ckt.close()

    def test_register_condition_value(self):
        # condition over a 2-bit register: applies only when c == 0b10
        ckt = build_qtask(3, 0, seed=0)
        c = ckt.add_classical_register("c", 2)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        ckt.insert_gate("x", n1, 1)
        ckt.measure(n2, 0, c[0])   # 0
        ckt.measure(n2, 1, c[1])   # 1
        ckt.c_if("x", n3, 2, condition=(c, 0b10))
        ckt.update_state()
        assert ckt.classical_value(c) == 0b10
        # qubit 2 flipped
        probs = ckt.probabilities()
        assert probs[(1 << 2) | (1 << 1)] == pytest.approx(1.0, abs=1e-12)
        ckt.close()


class TestIncrementalDynamics:
    def test_upstream_edit_recollapses_downstream_only(self):
        ckt = build_qtask(3, 1, seed=4)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        theta = ckt.insert_gate("ry", n1, 0, params=[0.7])
        ckt.insert_gate("h", n1, 1)
        ckt.measure(n2, 0, 0)
        ckt.c_if("x", n3, 2, condition=((0,), 1))
        ckt.update_state()
        for angle in (1.1, 2.3, 0.2):
            ckt.update_gate(theta, angle)
            report = ckt.update_state()
            assert report.was_incremental
            dense = DenseReferenceSimulator(
                ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
        ckt.close()

    def test_downstream_edit_preserves_outcome(self):
        ckt = build_qtask(3, 1, seed=1)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        ckt.insert_gate("h", n1, 0)
        m = ckt.measure(n2, 0, 0)
        ckt.update_state()
        outcome = ckt.outcomes.outcome_of(m.gate.op_index)
        # an edit strictly after the measurement must not redraw it
        ckt.insert_gate("x", n3, 2)
        report = ckt.update_state()
        assert report.was_incremental
        assert ckt.outcomes.outcome_of(m.gate.op_index) == outcome
        dense = DenseReferenceSimulator(
            ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
        )
        dense.update_state()
        np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
        ckt.close()

    def test_measure_removal_restores_unitary_state(self):
        ckt = build_qtask(2, 1, seed=6)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        m = ckt.measure(n2, 0, 0)
        ckt.update_state()
        ckt.remove_gate(m)
        ckt.update_state()
        np.testing.assert_allclose(
            np.abs(ckt.state()), [1 / math.sqrt(2), 1 / math.sqrt(2), 0, 0],
            atol=1e-12,
        )
        ckt.close()


class TestTrajectoriesAndForks:
    def test_reset_trajectory_is_reproducible(self):
        ckt = build_qtask(2, 2, seed=0)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        ckt.insert_gate("h", n1, 1)
        ckt.measure(n2, 0, 0)
        ckt.measure(n2, 1, 1)
        ckt.update_state()
        seen = []
        for _ in range(2):
            ckt.simulator.reset_trajectory(123)
            ckt.update_state()
            seen.append(ckt.outcomes.bitstring(range(2)))
        assert seen[0] == seen[1]
        ckt.close()

    def test_fork_trajectories_are_isolated(self):
        ckt = build_qtask(2, 1, seed=3)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        ckt.measure(n2, 0, 0)
        ckt.update_state()
        parent_bit = ckt.outcomes.get_bit(0)
        parent_state = ckt.state()
        child = ckt.fork()
        # the fork inherits the parent's classical state verbatim
        assert child.outcomes.get_bit(0) == parent_bit
        # re-collapse the fork until it lands on the opposite branch
        for s in range(20):
            child.simulator.reset_trajectory((999, s))
            child.update_state()
            if child.outcomes.get_bit(0) != parent_bit:
                break
        else:  # pragma: no cover - 2^-20 failure probability
            pytest.fail("fork never drew the opposite outcome")
        assert ckt.outcomes.get_bit(0) == parent_bit
        np.testing.assert_allclose(ckt.state(), parent_state, atol=1e-12)
        assert abs(np.abs(np.vdot(child.state(), parent_state))) < 1e-9
        child.close()
        ckt.close()

    def test_run_shots_deterministic_across_fleet_sizes(self):
        ckt = build_qtask(2, 2, seed=5, num_workers=2)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        ckt.insert_gate("h", n1, 0)
        ckt.insert_gate("cx", n2, 0, 1)
        ckt.measure(n3, 0, 0)
        ckt.measure(n3, 1, 1)
        counts_a = ckt.run_shots(120, seed=17)
        counts_b = ckt.run_shots(120, seed=17, num_forks=1)
        counts_c = ckt.run_shots(120, seed=17, num_forks=3)
        assert counts_a == counts_b == counts_c
        assert set(counts_a) <= {"00", "11"}
        assert sum(counts_a.values()) == 120
        ckt.close()

    def test_run_shots_requires_clbits(self):
        ckt = build_qtask(1, 0)
        with pytest.raises(CircuitError):
            ckt.run_shots(10)
        ckt.close()

    def test_run_shots_zero_and_negative(self):
        ckt = build_qtask(1, 1)
        assert ckt.run_shots(0) == {}
        with pytest.raises(ValueError):
            ckt.run_shots(-1)
        ckt.close()


class TestStatistics:
    def test_dynamic_stage_count_in_statistics(self):
        ckt = build_qtask(2, 1)
        n1 = ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        n2 = ckt.insert_net()
        m = ckt.measure(n2, 0, 0)
        stats = ckt.statistics()
        assert stats["num_dynamic_stages"] == 1
        ckt.remove_gate(m)
        assert ckt.statistics()["num_dynamic_stages"] == 0
        ckt.close()


class TestReviewRegressions:
    """Regressions from the PR's code review, pinned."""

    def test_removed_measure_clears_classical_bit(self):
        # the stale bit must not keep firing a downstream c_if after the
        # measurement that wrote it was removed from the circuit
        for seed in range(8):
            ckt = build_qtask(2, 1, seed=seed)
            n1, n2, n3 = (ckt.insert_net() for _ in range(3))
            ckt.insert_gate("h", n1, 0)
            m = ckt.measure(n2, 0, 0)
            ckt.c_if("x", n3, 1, condition=((0,), 1))
            ckt.update_state()
            drew_one = ckt.outcomes.get_bit(0) == 1
            ckt.remove_gate(m)
            ckt.update_state()
            assert ckt.outcomes.get_bit(0) == 0
            dense = DenseReferenceSimulator(
                ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
            ckt.close()
            if drew_one:
                break
        else:  # pragma: no cover - 2^-8
            pytest.fail("never drew outcome 1; test exercised nothing")

    def test_removed_measure_falls_back_to_earlier_writer(self):
        # two measures of the same clbit: removing the later one restores
        # the earlier one's recorded outcome
        ckt = build_qtask(2, 1, seed=0)
        n1, n2, n3, n4 = (ckt.insert_net() for _ in range(4))
        ckt.insert_gate("x", n1, 0)
        first = ckt.measure(n2, 0, 0)       # deterministically 1
        ckt.insert_gate("x", n3, 0)         # q0 back to |0>
        second = ckt.measure(n4, 0, 0)      # deterministically 0
        ckt.update_state()
        assert ckt.outcomes.get_bit(0) == 0
        ckt.remove_gate(second)
        ckt.update_state()
        assert ckt.outcomes.get_bit(0) == 1  # first measure's outcome again
        ckt.close()

    def test_all_baselines_run_dynamic_circuits(self):
        from repro.baselines.generic import QiskitLikeSimulator
        from repro.baselines.statevector import QulacsLikeSimulator
        from repro.qasm import parse_qasm
        from repro.qasm.levelize import program_to_circuit

        prog = parse_qasm(
            "qreg q[2]; creg c[2]; h q[0]; measure q -> c; if (c==1) x q[1];"
        )
        ckt = program_to_circuit(prog)
        for cls in (QulacsLikeSimulator, QiskitLikeSimulator):
            sim = cls(ckt)
            sim.update_state()
            state = sim.state()
            assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-10)
            dense = DenseReferenceSimulator(
                ckt, forced_outcomes=sim.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(state, dense.state(), atol=1e-10)
            sim.close()

    def test_op_reuse_across_circuits_rejected(self):
        a = Circuit(1, num_clbits=1)
        net_a = a.insert_net()
        handle = a.insert_measure(net_a, 0, 0)
        b = Circuit(1, num_clbits=1)
        net_b = b.insert_net()
        b.insert_measure(net_b, 0, 0)  # takes op_index 0 in b
        with pytest.raises(CircuitError):
            b.insert_operation(handle.gate, b.insert_net())

    def test_removed_op_can_be_reinserted(self):
        ckt = Circuit(1, num_clbits=1)
        net = ckt.insert_net()
        handle = ckt.insert_measure(net, 0, 0)
        op = handle.gate
        ckt.remove_gate(handle)
        net2 = ckt.insert_net()
        again = ckt.insert_operation(op, net2)  # synthesis-loop move
        assert again.gate.op_index == 0


class TestProgramPointConditions:
    """c_if reads its bits as of its program point, not the final register."""

    def test_cif_before_writer_ignores_previous_pass(self):
        # the c_if precedes the only measure writing its bit: every
        # (re-)execution must read 0, even after the measure drew 1
        for seed in range(10):
            ckt = build_qtask(2, 1, seed=seed)
            n1, n2, n3 = (ckt.insert_net() for _ in range(3))
            ry = ckt.insert_gate("ry", n1, 0, params=[1.2])
            ckt.c_if("x", n2, 1, condition=((0,), 1))
            ckt.measure(n3, 0, 0)
            ckt.update_state()
            ckt.update_gate(ry, 2.6)
            ckt.update_state()
            dense = DenseReferenceSimulator(
                ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
            ckt.close()

    def test_removed_writer_does_not_leak_later_writer_value(self):
        # after removing the earlier measure, the re-executed c_if must not
        # read the value the *later* measure (same clbit) left behind
        for seed in range(10):
            ckt = build_qtask(3, 1, seed=seed)
            n1, n2, n3, n4 = (ckt.insert_net() for _ in range(4))
            ckt.insert_gate("h", n1, 0)
            ckt.insert_gate("h", n1, 2)
            m1 = ckt.measure(n2, 0, 0)
            ckt.c_if("x", n3, 1, condition=((0,), 1))
            ckt.measure(n4, 2, 0)
            ckt.update_state()
            ckt.remove_gate(m1)
            ckt.update_state()
            dense = DenseReferenceSimulator(
                ckt.circuit, forced_outcomes=ckt.outcomes.recorded_outcomes()
            )
            dense.update_state()
            np.testing.assert_allclose(ckt.state(), dense.state(), atol=1e-10)
            ckt.close()

    def test_dense_repeated_passes_start_bits_clean(self):
        # full re-sim passes are fresh trajectories: a c_if preceding its
        # bit's only writer reads 0 on every pass
        ckt = Circuit(2, num_clbits=1)
        n1, n2, n3 = (ckt.insert_net() for _ in range(3))
        ckt.insert_gate("h", n1, 0)
        ckt.insert_cgate("x", n2, 1, condition=((0,), 1))
        ckt.insert_measure(n3, 0, 0)
        dense = DenseReferenceSimulator(ckt, seed=0)
        for _ in range(5):
            dense.update_state()
            probs = (np.abs(dense.state()) ** 2).reshape(2, 2).sum(axis=1)
            assert probs[1] == pytest.approx(0.0, abs=1e-12)  # q1 never flips

    def test_forked_collapse_stage_outcome_is_none(self):
        from repro.core.stage import MeasureStage

        ckt = build_qtask(1, 1, seed=0)
        n1, n2 = ckt.insert_net(), ckt.insert_net()
        ckt.insert_gate("h", n1, 0)
        ckt.measure(n2, 0, 0)
        ckt.update_state()
        child = ckt.fork()
        stages = [
            s for s in child.simulator.graph.stages if isinstance(s, MeasureStage)
        ]
        assert stages and stages[0].outcome is None
        child.close()
        ckt.close()
