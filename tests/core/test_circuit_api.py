"""Tests for the circuit programming model (Table II) and its invariants."""

import pytest

from repro.core.circuit import Circuit, CircuitObserver
from repro.core.exceptions import (
    CircuitError,
    NetDependencyError,
    QubitIndexError,
    StaleHandleError,
)
from repro.core.gates import Gate


def test_circuit_requires_positive_qubits():
    with pytest.raises(CircuitError):
        Circuit(0)


def test_qubits_returns_most_significant_first():
    ckt = Circuit(5)
    assert ckt.qubits() == (4, 3, 2, 1, 0)


def test_insert_net_appends_and_after_positions():
    ckt = Circuit(2)
    n1 = ckt.insert_net()
    n3 = ckt.insert_net()
    n2 = ckt.insert_net(after=n1)
    assert ckt.nets() == [n1, n2, n3]


def test_prepend_net():
    ckt = Circuit(2)
    n1 = ckt.insert_net()
    n0 = ckt.prepend_net()
    assert ckt.nets() == [n0, n1]


def test_insert_gate_by_name_and_instance():
    ckt = Circuit(3)
    net = ckt.insert_net()
    h1 = ckt.insert_gate("h", net, 0)
    h2 = ckt.insert_gate(Gate("cx", (1, 2)), net)
    assert h1.name == "h" and h2.name == "cx"
    assert ckt.num_gates == 2


def test_insert_gate_instance_with_extra_args_raises():
    ckt = Circuit(3)
    net = ckt.insert_net()
    with pytest.raises(CircuitError):
        ckt.insert_gate(Gate("h", (0,)), net, 1)


def test_net_dependency_rejected():
    """Listing 1: inserting a dependent gate into a net throws."""
    ckt = Circuit(3)
    net = ckt.insert_net()
    ckt.insert_gate("cx", net, 0, 1)
    with pytest.raises(NetDependencyError):
        ckt.insert_gate("h", net, 1)


def test_net_dependency_allowed_when_flag_set():
    ckt = Circuit(3, allow_net_dependencies=True)
    net = ckt.insert_net()
    ckt.insert_gate("cx", net, 0, 1)
    ckt.insert_gate("h", net, 1)    # no exception
    assert ckt.num_gates == 2


def test_qubit_out_of_range_rejected():
    ckt = Circuit(2)
    net = ckt.insert_net()
    with pytest.raises(QubitIndexError):
        ckt.insert_gate("h", net, 5)


def test_remove_gate_and_stale_handle():
    ckt = Circuit(2)
    net = ckt.insert_net()
    h = ckt.insert_gate("h", net, 0)
    ckt.remove_gate(h)
    assert ckt.num_gates == 0
    with pytest.raises(StaleHandleError):
        ckt.remove_gate(h)


def test_remove_net_removes_all_gates():
    ckt = Circuit(3)
    net = ckt.insert_net()
    ckt.insert_gate("h", net, 0)
    ckt.insert_gate("x", net, 1)
    ckt.remove_net(net)
    assert ckt.num_nets == 0 and ckt.num_gates == 0
    with pytest.raises(StaleHandleError):
        ckt.insert_gate("h", net, 0)


def test_remove_net_not_in_circuit_raises():
    ckt = Circuit(2)
    other = Circuit(2).insert_net()
    with pytest.raises(StaleHandleError):
        ckt.remove_net(other)


def test_depth_counts_only_nonempty_nets():
    ckt = Circuit(2)
    ckt.insert_net()
    net = ckt.insert_net()
    ckt.insert_gate("h", net, 0)
    assert ckt.num_nets == 2
    assert ckt.depth == 1


def test_count_gate_handles_cnot_alias():
    ckt = Circuit(3)
    net = ckt.insert_net()
    ckt.insert_gate("cnot", net, 0, 1)
    assert ckt.count_gate("cx") == 1
    assert ckt.count_gate("cnot") == 1
    assert ckt.count_gate("h") == 0


def test_gates_listed_in_net_order():
    ckt = Circuit(3)
    n1, n2 = ckt.insert_net(), ckt.insert_net()
    g2 = ckt.insert_gate("x", n2, 0)
    g1 = ckt.insert_gate("h", n1, 1)
    assert ckt.gates() == [g1, g2]


def test_append_level_and_from_levels():
    ckt = Circuit(3)
    ckt.from_levels([[Gate("h", (0,)), Gate("x", (1,))], [Gate("cx", (0, 1))]])
    assert ckt.num_nets == 2
    assert ckt.num_gates == 3


# ---------------------------------------------------------------------------
# observer notifications
# ---------------------------------------------------------------------------


class RecordingObserver(CircuitObserver):
    def __init__(self):
        self.events = []

    def on_net_inserted(self, circuit, net, position):
        self.events.append(("net+", position))

    def on_net_removed(self, circuit, net, removed_gates):
        self.events.append(("net-", len(removed_gates)))

    def on_gate_inserted(self, circuit, handle):
        self.events.append(("gate+", handle.name))

    def on_gate_removed(self, circuit, handle):
        self.events.append(("gate-", handle.name))


def test_observer_receives_all_modifier_events():
    ckt = Circuit(3)
    obs = RecordingObserver()
    ckt.register_observer(obs)
    net = ckt.insert_net()
    h = ckt.insert_gate("h", net, 0)
    ckt.insert_gate("cx", net, 1, 2)
    ckt.remove_gate(h)
    ckt.remove_net(net)
    assert obs.events == [
        ("net+", 0),
        ("gate+", "h"),
        ("gate+", "cx"),
        ("gate-", "h"),
        ("gate-", "cx"),
        ("net-", 1),
    ]


def test_unregister_observer_stops_notifications():
    ckt = Circuit(2)
    obs = RecordingObserver()
    ckt.register_observer(obs)
    ckt.unregister_observer(obs)
    ckt.insert_net()
    assert obs.events == []


def test_register_observer_idempotent():
    ckt = Circuit(2)
    obs = RecordingObserver()
    ckt.register_observer(obs)
    ckt.register_observer(obs)
    ckt.insert_net()
    assert obs.events == [("net+", 0)]
