"""Test package."""
