"""Unit tests for the plan layer: run tables and frontier compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.exec_plan import (
    RUN_ACTION,
    RUN_COPY,
    PlanReport,
    RunSpec,
    RunTable,
    build_execution_plan,
)
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator


def _spec(lo, hi, op, qubits=(0,), kind=RUN_ACTION):
    return RunSpec(kind, lo, hi, qubits, op)


# ---------------------------------------------------------------------------
# RunTable
# ---------------------------------------------------------------------------


class TestRunTable:
    def test_from_runs_packs_bounds(self):
        op = object()
        table = RunTable.from_runs([_spec(0, 3, op), _spec(8, 11, op)])
        np.testing.assert_array_equal(table.los, [0, 8])
        np.testing.assert_array_equal(table.his, [3, 11])
        assert table.num_runs == 2

    def test_from_runs_dedupes_shared_ops(self):
        op_a, op_b = object(), object()
        runs = [
            _spec(0, 3, op_a),
            _spec(4, 7, op_b),
            _spec(8, 11, op_a),
            _spec(12, 15, op_a),
        ]
        table = RunTable.from_runs(runs)
        assert len(table.ops) == 2
        np.testing.assert_array_equal(table.op_ids, [0, 1, 0, 0])

    def test_same_payload_different_qubits_not_merged(self):
        op = object()
        table = RunTable.from_runs([_spec(0, 3, op, (0,)), _spec(4, 7, op, (1,))])
        assert len(table.ops) == 2

    def test_same_payload_different_kind_not_merged(self):
        op = object()
        table = RunTable.from_runs(
            [_spec(0, 3, op, (), RUN_ACTION), _spec(4, 7, op, (), RUN_COPY)]
        )
        assert len(table.ops) == 2

    def test_groups_yield_runs_by_op(self):
        op_a, op_b = object(), object()
        table = RunTable.from_runs(
            [_spec(0, 3, op_a), _spec(4, 7, op_b), _spec(8, 11, op_a)]
        )
        got = {id(op.op): list(idx) for op, idx in table.groups()}
        assert got == {id(op_a): [0, 2], id(op_b): [1]}

    @pytest.mark.parametrize("parts", [1, 2, 3, 5, 100])
    def test_split_covers_every_run_once(self, parts):
        op = object()
        table = RunTable.from_runs([_spec(4 * i, 4 * i + 3, op) for i in range(5)])
        chunks = table.split(parts)
        assert len(chunks) <= max(1, parts)
        los = np.concatenate([c.los for c in chunks])
        np.testing.assert_array_equal(los, table.los)
        # the op table is shared by reference, not copied per chunk
        assert all(c.ops is table.ops for c in chunks)

    def test_split_empty_table(self):
        table = RunTable.from_runs([])
        assert table.num_runs == 0
        assert len(table.split(4)) == 1


# ---------------------------------------------------------------------------
# build_execution_plan over a real partition graph
# ---------------------------------------------------------------------------


def _simulator(levels, num_qubits=4, **kwargs):
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    kwargs.setdefault("block_size", 4)
    kwargs.setdefault("kernel_backend", "legacy")
    return QTaskSimulator(circuit, **kwargs)


def _plan_for(sim):
    affected = sim.graph.affected_nodes()
    stage_order = sim.graph.stages
    return (
        build_execution_plan(
            affected, lambda stage: sim._reader_for(stage, stage_order)
        ),
        affected,
    )


class TestBuildExecutionPlan:
    def test_one_plan_per_stage(self):
        sim = _simulator([[Gate("h", (q,)) for q in range(4)],
                          [Gate("rz", (q,), (0.3,)) for q in range(4)]])
        plan, affected = _plan_for(sim)
        stage_uids = {node.stage.uid for node in affected}
        assert plan.num_stages == len(stage_uids)
        assert len({sp.stage.uid for sp in plan.stage_plans}) == plan.num_stages

    def test_stage_plans_in_topological_stage_order(self):
        sim = _simulator([[Gate("h", (0,))], [Gate("x", (0,))], [Gate("z", (0,))]])
        plan, _ = _plan_for(sim)
        seqs = [sp.stage.seq for sp in plan.stage_plans]
        assert seqs == sorted(seqs)

    def test_edges_point_forward_and_are_unique(self):
        sim = _simulator(
            [[Gate("h", (q,)) for q in range(4)], [Gate("cx", (0, 1))],
             [Gate("cx", (2, 3))], [Gate("rz", (0,), (0.5,))]]
        )
        plan, _ = _plan_for(sim)
        seq_of = {sp.stage.uid: sp.stage.seq for sp in plan.stage_plans}
        assert len(set(plan.edges)) == len(plan.edges)
        for pred, succ in plan.edges:
            assert pred != succ
            assert seq_of[pred] < seq_of[succ]

    def test_static_stage_runs_frozen_at_build_time(self):
        # z is diagonal -> UnitaryStage, whose emission is input-independent
        sim = _simulator([[Gate("z", (0,))]])
        plan, _ = _plan_for(sim)
        (sp,) = plan.stage_plans
        assert sp.stage.plan_static
        assert sp._static_runs is not None
        table = sp.build_table()
        assert table.num_runs == len(sp._static_runs)
        assert sp.emitted_runs == table.num_runs

    def test_block_writes_match_affected_blocks(self):
        sim = _simulator([[Gate("h", (q,)) for q in range(4)]])
        plan, affected = _plan_for(sim)
        expected = sum(
            len(node.block_range) for node in affected if not node.is_sync
        )
        assert plan.block_writes == expected
        assert plan.block_writes == sum(sp.block_writes for sp in plan.stage_plans)

    def test_low_qubit_stage_folds_many_partitions_into_one_plan(self):
        # A q0-diagonal gate on tiny blocks shatters into many partitions;
        # the plan pipeline's whole point is that they become ONE stage plan.
        sim = _simulator(
            [[Gate("h", (q,)) for q in range(6)], [Gate("rz", (0,), (0.7,))]],
            num_qubits=6,
            block_size=4,
        )
        plan, affected = _plan_for(sim)
        rz_nodes = [n for n in affected if n.stage.seq == 1 and not n.is_sync]
        assert len(rz_nodes) > 1
        rz_plans = [sp for sp in plan.stage_plans if sp.stage.seq == 1]
        assert len(rz_plans) == 1
        assert len(rz_plans[0].block_ranges) == len(rz_nodes)


# ---------------------------------------------------------------------------
# PlanReport
# ---------------------------------------------------------------------------


class TestPlanReport:
    def test_runs_per_plan(self):
        report = PlanReport(
            backend="numpy",
            requested_backend="auto",
            plans_built=4,
            runs_batched=40,
            plan_chunks=4,
            backend_fallbacks=0,
            updates_planned=2,
        )
        assert report.runs_per_plan == 10.0
        assert report.as_dict()["runs_per_plan"] == 10.0

    def test_zero_plans_zero_ratio(self):
        report = PlanReport("legacy", "legacy", 0, 0, 0, 0, 0)
        assert report.runs_per_plan == 0.0
