"""Unit tests for the ``update_gate`` retune modifier."""

import numpy as np
import pytest

from repro import QTask
from repro.core.circuit import Circuit
from repro.core.exceptions import GateArityError, StaleHandleError
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.core.stage import FusedUnitaryStage, MatVecStage, UnitaryStage

from ..conftest import circuit_levels, reference_state


def assert_matches_reference(sim, ckt, atol=1e-10):
    expected = reference_state(ckt.num_qubits, circuit_levels(ckt))
    np.testing.assert_allclose(sim.state(), expected, atol=atol)


class TestCircuitUpdateGate:
    def test_swaps_gate_in_place(self):
        ckt = Circuit(2)
        net = ckt.insert_net()
        h = ckt.insert_gate("rz", net, 0, params=[0.5])
        returned = ckt.update_gate(h, 1.5)
        assert returned is h
        assert h.alive
        assert h.gate.params == (1.5,)
        assert h.gate.name == "rz" and h.gate.qubits == (0,)
        assert net.gates == [h]

    def test_wrong_parameter_count_raises_and_leaves_gate_intact(self):
        ckt = Circuit(2)
        net = ckt.insert_net()
        h = ckt.insert_gate("rz", net, 0, params=[0.5])
        with pytest.raises(GateArityError):
            ckt.update_gate(h, 1.0, 2.0)
        assert h.gate.params == (0.5,)
        h2 = ckt.insert_gate("x", net, 1)
        with pytest.raises(GateArityError):
            ckt.update_gate(h2, 0.7)

    def test_stale_handle_raises(self):
        ckt = Circuit(2)
        net = ckt.insert_net()
        h = ckt.insert_gate("rz", net, 0, params=[0.5])
        ckt.remove_gate(h)
        with pytest.raises(StaleHandleError):
            ckt.update_gate(h, 1.0)

    def test_observers_notified_with_old_gate(self):
        from repro.core.circuit import CircuitObserver

        seen = []

        class Spy(CircuitObserver):
            def on_gate_updated(self, circuit, handle, old_gate):
                seen.append((handle, old_gate))

        ckt = Circuit(2)
        ckt.register_observer(Spy())
        net = ckt.insert_net()
        h = ckt.insert_gate("rz", net, 0, params=[0.5])
        ckt.update_gate(h, 2.5)
        assert len(seen) == 1
        assert seen[0][0] is h and seen[0][1].params == (0.5,)


class TestSimulatorRetune:
    def test_diagonal_retune_keeps_stage_and_topology(self):
        ckt = Circuit(3)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        ckt.append_level([Gate("h", (q,)) for q in range(3)])
        _, (h,) = ckt.append_level([Gate("rz", (2,), (0.4,))])
        sim.update_state()
        stage = sim._gate_stage[h.uid]
        assert isinstance(stage, UnitaryStage)
        stats_before = sim.statistics()
        ckt.update_gate(h, 2.9)
        assert sim._gate_stage[h.uid] is stage  # same stage object
        stats_after = sim.statistics()
        for key in ("num_stages", "num_nodes", "num_edges"):
            assert stats_after[key] == stats_before[key]
        report = sim.update_state()
        assert report.affected_partitions < report.total_partitions
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_matvec_member_retune_keeps_stage(self):
        ckt = Circuit(3)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        ckt.append_level([Gate("h", (q,)) for q in range(3)])
        _, (h,) = ckt.append_level([Gate("rx", (1,), (0.7,))])
        sim.update_state()
        stage = sim._gate_stage[h.uid]
        assert isinstance(stage, MatVecStage)
        ckt.update_gate(h, 1.3)
        assert sim._gate_stage[h.uid] is stage
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_classification_crossing_restructures(self):
        """rx crossing superposition <-> permutation rebuilds the stage."""
        ckt = Circuit(3)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        ckt.append_level([Gate("h", (q,)) for q in range(3)])
        _, (h,) = ckt.append_level([Gate("rx", (0,), (0.5,))])
        sim.update_state()
        assert isinstance(sim._gate_stage[h.uid], MatVecStage)
        ckt.update_gate(h, np.pi)  # rx(pi) is a monomial (bit-flip) gate
        assert isinstance(sim._gate_stage[h.uid], UnitaryStage)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        ckt.update_gate(h, 0.25)  # back to superposition
        assert isinstance(sim._gate_stage[h.uid], MatVecStage)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_identity_angle_restructures_and_back(self):
        """rz(0) touches nothing (empty layout) and must not keep stale nodes."""
        ckt = Circuit(2)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        ckt.append_level([Gate("h", (0,)), Gate("h", (1,))])
        _, (h,) = ckt.append_level([Gate("rz", (0,), (0.8,))])
        sim.update_state()
        ckt.update_gate(h, 0.0)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        ckt.update_gate(h, 1.1)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_fused_stage_recomposes_in_place(self):
        ckt = Circuit(3)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1, fusion=True)
        ckt.append_level([Gate("h", (q,)) for q in range(3)])
        ckt.append_level([Gate("cx", (0, 1))])
        _, (h,) = ckt.append_level([Gate("rz", (1,), (0.5,))])
        ckt.append_level([Gate("cx", (0, 1))])
        sim.update_state()
        stage = sim._gate_stage[h.uid]
        assert isinstance(stage, FusedUnitaryStage)
        ckt.update_gate(h, 2.2)
        assert sim._gate_stage[h.uid] is stage  # recomposed, not rebuilt
        assert stage.gates[1].params == (2.2,)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_fused_stage_identity_collapse_restructures(self):
        """A retune that collapses the fused run to the identity must rebuild."""
        ckt = Circuit(2)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1, fusion=True)
        ckt.append_level([Gate("h", (0,)), Gate("h", (1,))])
        ckt.append_level([Gate("cx", (0, 1))])
        _, (h,) = ckt.append_level([Gate("rz", (1,), (0.5,))])
        ckt.append_level([Gate("cx", (0, 1))])
        sim.update_state()
        ckt.update_gate(h, 0.0)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        ckt.update_gate(h, 0.9)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_retune_before_first_update(self):
        ckt = Circuit(2)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        net = ckt.insert_net()
        h = ckt.insert_gate("rz", net, 0, params=[0.3])
        ckt.update_gate(h, 1.4)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()

    def test_retuned_gate_can_still_be_removed(self):
        ckt = Circuit(2)
        sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
        ckt.append_level([Gate("h", (0,))])
        _, (h,) = ckt.append_level([Gate("rz", (0,), (0.3,))])
        sim.update_state()
        ckt.update_gate(h, 1.7)
        sim.update_state()
        ckt.remove_gate(h)
        sim.update_state()
        assert_matches_reference(sim, ckt)
        sim.close()


class TestFacadeRetune:
    def test_qtask_update_gate_round_trip(self):
        ckt = QTask(3, block_size=4)
        net = ckt.insert_net()
        for q in range(3):
            ckt.insert_gate("h", net, q)
        net2 = ckt.insert_net(net)
        h = ckt.insert_gate("rz", net2, 0, params=[0.2])
        ckt.update_state()
        before = ckt.expectation("IIZ")
        ckt.update_gate(h, 0.2 + 2 * np.pi)  # same operator up to 2pi period
        report = ckt.update_state()
        assert report.was_incremental
        after = ckt.expectation("IIZ")
        assert abs(before - after) < 1e-10
        ckt.close()
