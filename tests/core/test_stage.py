"""Tests for UnitaryStage and MatVecStage behaviour."""

import numpy as np
import pytest

from repro.core.blocks import BlockRange
from repro.core.cow import InitialStateStore, StoreChain
from repro.core.gates import Gate, embed_gate_matrix, gate_matrix
from repro.core.stage import MatVecStage, UnitaryStage


def make_chain(n, block=4, state=None):
    init = InitialStateStore(1 << n, block)
    if state is not None:
        for b in range(init.n_blocks):
            init._blocks[b] = np.array(state[b * block : (b + 1) * block], dtype=complex)
    return StoreChain([init])


def run_stage(stage, reader):
    stage.prepare(reader)
    for spec in stage.partition_specs():
        for task in stage.block_tasks(reader, spec.block_range):
            task()


def resolved_output(stage, reader_chain):
    """Stage output with untouched blocks falling through to the input."""
    chain = StoreChain([reader_chain._stores[0], stage.store])
    return chain.full_vector()


# ---------------------------------------------------------------------------
# UnitaryStage
# ---------------------------------------------------------------------------


def test_unitary_stage_rejects_superposition_gates():
    with pytest.raises(ValueError):
        UnitaryStage(Gate("h", (0,)), 3, 4)


def test_unitary_stage_applies_cx_to_initial_state():
    n = 3
    gate = Gate("x", (0,))
    stage = UnitaryStage(gate, n, 4)
    chain = make_chain(n)
    run_stage(stage, chain)
    out = resolved_output(stage, chain)
    expected = embed_gate_matrix(gate, n) @ chain.full_vector()
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_unitary_stage_on_random_state():
    n = 4
    rng = np.random.default_rng(3)
    psi = rng.normal(size=16) + 1j * rng.normal(size=16)
    gate = Gate("cx", (3, 1))
    stage = UnitaryStage(gate, n, 4)
    chain = make_chain(n, 4, psi)
    run_stage(stage, chain)
    np.testing.assert_allclose(
        resolved_output(stage, chain), embed_gate_matrix(gate, n) @ psi, atol=1e-12
    )


def test_unitary_stage_writes_only_partition_blocks():
    n = 5
    gate = Gate("cz", (4, 3))   # touches the top quarter only
    stage = UnitaryStage(gate, n, 4)
    chain = make_chain(n)
    run_stage(stage, chain)
    assert stage.store.stored_blocks() == (6, 7)


def test_unitary_stage_total_block_count():
    stage = UnitaryStage(Gate("cx", (4, 3)), 5, 4)
    assert stage.total_block_count() == 4
    stage2 = UnitaryStage(Gate("cx", (3, 2)), 5, 4)
    assert stage2.total_block_count() == 4  # two partitions of two blocks


def test_unitary_stage_label_and_gate_list():
    gate = Gate("swap", (0, 2))
    stage = UnitaryStage(gate, 3, 4)
    assert stage.gate_list() == (gate,)
    assert "swap" in stage.label()
    assert not stage.reads_all_blocks()
    assert not stage.writes_all_blocks()


# ---------------------------------------------------------------------------
# MatVecStage
# ---------------------------------------------------------------------------


def test_matvec_stage_single_hadamard():
    n = 3
    gate = Gate("h", (1,))
    stage = MatVecStage([gate], n, 4)
    chain = make_chain(n)
    run_stage(stage, chain)
    expected = embed_gate_matrix(gate, n) @ chain.full_vector()
    np.testing.assert_allclose(resolved_output(stage, chain), expected, atol=1e-12)


def test_matvec_stage_multiple_gates_disjoint_qubits():
    n = 4
    gates = [Gate("h", (0,)), Gate("ry", (2,), (0.8,))]
    stage = MatVecStage(gates, n, 4)
    rng = np.random.default_rng(5)
    psi = rng.normal(size=16) + 1j * rng.normal(size=16)
    chain = make_chain(n, 4, psi)
    run_stage(stage, chain)
    expected = psi
    for g in gates:
        expected = embed_gate_matrix(g, n) @ expected
    np.testing.assert_allclose(resolved_output(stage, chain), expected, atol=1e-12)


def test_matvec_stage_combined_path_matches_prepared_path():
    n = 4
    gates = [Gate("h", (1,)), Gate("rx", (3,), (0.4,))]
    rng = np.random.default_rng(9)
    psi = rng.normal(size=16) + 1j * rng.normal(size=16)

    prepared = MatVecStage(list(gates), n, 4, combine_limit=0)
    combined = MatVecStage(list(gates), n, 4, combine_limit=8)
    chain1 = make_chain(n, 4, psi)
    chain2 = make_chain(n, 4, psi)
    run_stage(prepared, chain1)
    run_stage(combined, chain2)
    np.testing.assert_allclose(
        resolved_output(prepared, chain1), resolved_output(combined, chain2), atol=1e-12
    )


def test_matvec_stage_rejects_overlapping_qubits():
    stage = MatVecStage([Gate("h", (1,))], 3, 4)
    with pytest.raises(ValueError):
        stage.add_gate(Gate("rx", (1,), (0.3,)))


def test_matvec_stage_add_remove_gate_membership():
    stage = MatVecStage([Gate("h", (0,))], 3, 4)
    g = Gate("h", (2,))
    stage.add_gate(g)
    assert len(stage.gate_list()) == 2
    stage.remove_gate(g)
    assert len(stage.gate_list()) == 1
    stage.remove_gate(stage.gate_list()[0])
    assert stage.is_empty
    assert stage.partition_specs() == []


def test_matvec_stage_combined_matrix_is_tensor_product():
    stage = MatVecStage([Gate("h", (0,)), Gate("x", (2,))], 3, 4)
    expected = np.kron(gate_matrix("x"), gate_matrix("h"))
    np.testing.assert_allclose(stage.combined_matrix(), expected)
    assert stage.combined_qubits() == (0, 2)


def test_matvec_stage_reads_and_writes_all_blocks():
    stage = MatVecStage([Gate("h", (0,))], 4, 4)
    assert stage.reads_all_blocks()
    assert stage.writes_all_blocks()


def test_matvec_stage_writes_every_block():
    n = 4
    stage = MatVecStage([Gate("h", (3,))], n, 4)
    chain = make_chain(n)
    run_stage(stage, chain)
    assert stage.store.stored_blocks() == tuple(range(4))


def test_stage_write_full_helper():
    stage = UnitaryStage(Gate("x", (0,)), 3, 4)
    vec = np.arange(8, dtype=complex)
    stage.write_full(vec)
    assert stage.store.num_stored_blocks == 2
    np.testing.assert_allclose(stage.store.get_block(1), [4, 5, 6, 7])
