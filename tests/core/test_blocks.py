"""Tests for block arithmetic, block ranges and interval sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    BlockRange,
    DEFAULT_BLOCK_SIZE,
    IntervalSet,
    block_bounds,
    block_of,
    intersect_ranges,
    merge_overlapping,
    num_blocks,
    ranges_intersect,
    validate_block_size,
)


def test_default_block_size_matches_paper():
    assert DEFAULT_BLOCK_SIZE == 256


@pytest.mark.parametrize("value", [1, 2, 4, 256, 1 << 20])
def test_validate_block_size_accepts_powers_of_two(value):
    assert validate_block_size(value) == value


@pytest.mark.parametrize("value", [0, -1, 3, 5, 100, 257])
def test_validate_block_size_rejects_non_powers(value):
    with pytest.raises(ValueError):
        validate_block_size(value)


def test_num_blocks_basic():
    assert num_blocks(32, 4) == 8
    assert num_blocks(4, 4) == 1
    assert num_blocks(2, 4) == 1  # short single block


def test_num_blocks_rejects_nonpositive():
    with pytest.raises(ValueError):
        num_blocks(0, 4)


def test_block_of_and_bounds():
    assert block_of(0, 4) == 0
    assert block_of(17, 4) == 4
    assert block_bounds(4, 4, 32) == (16, 19)
    assert block_bounds(0, 8, 4) == (0, 3)  # clipped short block


# ---------------------------------------------------------------------------
# BlockRange
# ---------------------------------------------------------------------------


def test_block_range_validation():
    with pytest.raises(ValueError):
        BlockRange(3, 2)
    with pytest.raises(ValueError):
        BlockRange(-1, 2)


def test_block_range_len_contains_iter():
    r = BlockRange(2, 5)
    assert len(r) == 4
    assert 3 in r and 6 not in r
    assert list(r) == [2, 3, 4, 5]


def test_block_range_intersects():
    assert ranges_intersect(BlockRange(0, 3), BlockRange(3, 5))
    assert not ranges_intersect(BlockRange(0, 2), BlockRange(3, 5))


def test_block_range_intersection_value():
    assert intersect_ranges(BlockRange(0, 4), BlockRange(2, 8)) == BlockRange(2, 4)
    assert intersect_ranges(BlockRange(0, 1), BlockRange(2, 3)) is None


def test_block_range_union_span():
    assert BlockRange(0, 1).union_span(BlockRange(5, 6)) == BlockRange(0, 6)


def test_block_range_index_bounds():
    assert BlockRange(2, 3).index_bounds(4, 32) == (8, 15)
    # clipped by dim
    assert BlockRange(0, 0).index_bounds(8, 4) == (0, 3)


def test_merge_overlapping():
    merged = merge_overlapping([BlockRange(4, 6), BlockRange(0, 2), BlockRange(2, 4)])
    assert merged == [BlockRange(0, 6)]
    merged = merge_overlapping([BlockRange(0, 1), BlockRange(3, 4)])
    assert merged == [BlockRange(0, 1), BlockRange(3, 4)]


def test_merge_overlapping_adjacent_ranges_coalesce():
    assert merge_overlapping([BlockRange(0, 1), BlockRange(2, 3)]) == [BlockRange(0, 3)]


def test_merge_overlapping_empty():
    assert merge_overlapping([]) == []


# ---------------------------------------------------------------------------
# IntervalSet
# ---------------------------------------------------------------------------


def test_interval_set_basic_membership():
    s = IntervalSet([BlockRange(0, 3), BlockRange(6, 8)])
    assert len(s) == 7
    assert sorted(s) == [0, 1, 2, 3, 6, 7, 8]


def test_interval_set_subtract_middle_splits():
    s = IntervalSet.from_range(BlockRange(0, 9))
    s.subtract(BlockRange(3, 5))
    assert s.ranges() == (BlockRange(0, 2), BlockRange(6, 9))


def test_interval_set_subtract_everything_empties():
    s = IntervalSet.from_range(BlockRange(2, 4))
    s.subtract(BlockRange(0, 10))
    assert not s
    assert len(s) == 0


def test_interval_set_subtract_disjoint_is_noop():
    s = IntervalSet.from_range(BlockRange(2, 4))
    s.subtract(BlockRange(6, 9))
    assert s.ranges() == (BlockRange(2, 4),)


def test_interval_set_intersects_and_intersection():
    s = IntervalSet([BlockRange(0, 2), BlockRange(5, 7)])
    assert s.intersects(BlockRange(2, 5))
    assert s.intersection(BlockRange(2, 5)) == [BlockRange(2, 2), BlockRange(5, 5)]
    assert not s.intersects(BlockRange(3, 4))


def test_interval_set_add_merges():
    s = IntervalSet([BlockRange(0, 1)])
    s.add(BlockRange(2, 3))
    assert s.ranges() == (BlockRange(0, 3),)


def test_interval_set_copy_is_independent():
    s = IntervalSet.from_range(BlockRange(0, 5))
    c = s.copy()
    c.subtract(BlockRange(0, 5))
    assert len(s) == 6 and len(c) == 0


# ---------------------------------------------------------------------------
# property-based: IntervalSet.subtract behaves like set difference
# ---------------------------------------------------------------------------

range_strategy = st.tuples(
    st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40)
).map(lambda t: BlockRange(min(t), max(t)))


@settings(max_examples=60, deadline=None)
@given(initial=st.lists(range_strategy, max_size=5), removals=st.lists(range_strategy, max_size=5))
def test_interval_set_subtract_matches_python_sets(initial, removals):
    s = IntervalSet(initial)
    expected = set()
    for r in initial:
        expected.update(r.blocks())
    for r in removals:
        s.subtract(r)
        expected.difference_update(r.blocks())
    assert set(s) == expected


@settings(max_examples=60, deadline=None)
@given(ranges=st.lists(range_strategy, min_size=1, max_size=6))
def test_merge_overlapping_preserves_membership_and_disjointness(ranges):
    merged = merge_overlapping(ranges)
    original = set()
    for r in ranges:
        original.update(r.blocks())
    covered = set()
    for r in merged:
        covered.update(r.blocks())
    assert covered == original
    # merged ranges are sorted and non-adjacent
    for a, b in zip(merged, merged[1:]):
        assert a.last + 1 < b.first
