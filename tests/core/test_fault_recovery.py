"""Chaos integration tests: injected faults never corrupt computed states.

Every recovery layer is exercised end to end against the seeded fault
plans from ``repro.core.faults``:

* per-run retries and the chunk fallback (``run_retries``),
* executor task-body retries (``task_retries``),
* the circuit-breaker backend degradation ladder (``backend_transitions``),
* process-pool ship timeouts + pool respawn after a SIGKILLed worker,
* SharedMemory segment cleanup on every failure path.

The invariant throughout: with faults firing at every site, the final
state still equals the dense reference to 1e-10 and every recovery action
is visible in ``statistics()``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core import faults
from repro.core.circuit import Circuit
from repro.core.faults import FaultInjected, FaultPlan
from repro.core.kernels import (
    HAVE_NUMBA,
    KernelBackend,
    NumbaBackend,
    NumpyBatchBackend,
    ProcessPoolBackend,
)
from repro.core.simulator import QTaskSimulator

from ..conftest import circuit_levels, random_levels, reference_state

ATOL = 1e-10

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Restore whatever plan (chaos-mode or none) surrounded each test."""
    previous = faults.install(None)
    yield
    faults.install(previous)


def _build_sim(num_qubits, levels, *, kernel_backend, num_workers=2, **knobs):
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    return QTaskSimulator(
        circuit, num_workers=num_workers, kernel_backend=kernel_backend, **knobs
    )


CHAOS_BACKENDS = [
    pytest.param("legacy", id="legacy"),
    pytest.param("numpy", id="numpy"),
    pytest.param(
        "numba",
        id="numba",
        marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed"),
    ),
    pytest.param("process", id="process", marks=needs_fork),
]


def _chaos_backend(spec):
    if spec == "process":
        # no ship threshold so the fork/SharedMemory path runs even for
        # these tiny states; short backoff keeps retries cheap
        return ProcessPoolBackend(num_workers=2, min_ship_amps=0, retry_backoff=0.01)
    if spec == "numba":  # pragma: no cover - needs numba
        return NumbaBackend()
    return spec


# ---------------------------------------------------------------------------
# chaos parity: every site firing, every backend, state still exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", CHAOS_BACKENDS)
def test_chaos_parity_against_dense(backend):
    """p=0.05 at every recoverable site; final states match dense to 1e-10."""
    num_qubits = 6
    rng = random.Random(20260807)
    levels = random_levels(rng, num_qubits, 6)
    sim = _build_sim(
        num_qubits, levels, kernel_backend=_chaos_backend(backend), block_size=4
    )
    plan = FaultPlan(
        seed=1, probability=0.05, probabilities={"pool.worker.kill": 0.0}
    )
    faults.install(plan)
    try:
        sim.update_state()
        # incremental updates under fire: grow the circuit, then retune
        net = sim.circuit.insert_net()
        sim.circuit.insert_gate("cx", net, 0, num_qubits - 1)
        sim.update_state()
        net2 = sim.circuit.insert_net()
        handle = sim.circuit.insert_gate("rz", net2, 2, params=[0.917])
        sim.update_state()
        sim.circuit.update_gate(handle, 1.234)
        sim.update_state()
        expected = reference_state(num_qubits, circuit_levels(sim.circuit))
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
        # the plan was really consulted inside the armed update scopes
        assert plan.stats(), "no fault site was ever evaluated"
    finally:
        faults.uninstall()
        sim.close()


def test_chaos_parity_high_rate_numpy():
    """Even at p=0.2 the layered retries converge to the exact state."""
    num_qubits = 5
    rng = random.Random(99)
    levels = random_levels(rng, num_qubits, 5)
    sim = _build_sim(num_qubits, levels, kernel_backend="numpy", block_size=4)
    plan = FaultPlan(
        seed=3, probability=0.2, probabilities={"pool.worker.kill": 0.0}
    )
    faults.install(plan)
    try:
        sim.update_state()
        expected = reference_state(num_qubits, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
        assert plan.total_injected() > 0
    finally:
        faults.uninstall()
        sim.close()


def test_chaos_replay_is_deterministic():
    """Same seed, same circuit: identical injection schedule both runs.

    Single worker: full-schedule replay equality requires a deterministic
    site-evaluation *order*, which concurrent executor threads do not
    provide (they guarantee a deterministic multiset per evaluation order,
    not a fixed interleaving)."""

    def run_once():
        rng = random.Random(4)
        levels = random_levels(rng, 5, 4)
        sim = _build_sim(
            5, levels, kernel_backend="numpy", block_size=4, num_workers=1
        )
        plan = FaultPlan(seed=17, probability=0.15)
        faults.install(plan)
        try:
            sim.update_state()
            return plan.stats(), sim.state().copy()
        finally:
            faults.uninstall()
            sim.close()

    stats_a, state_a = run_once()
    stats_b, state_b = run_once()
    assert stats_a == stats_b
    np.testing.assert_array_equal(state_a, state_b)


# ---------------------------------------------------------------------------
# recovery visibility: every layer surfaces its counters in statistics()
# ---------------------------------------------------------------------------


def test_run_retries_visible_in_statistics():
    """A scripted publish fault falls back to run-granular and retries."""
    rng = random.Random(12)
    levels = random_levels(rng, 5, 4)
    sim = _build_sim(5, levels, kernel_backend="numpy", block_size=4)
    faults.install(FaultPlan(script=[("cow.publish", 1), ("cow.publish", 2)]))
    try:
        sim.update_state()
        stats = sim.statistics()
        assert stats["backend_fallbacks"] >= 1
        assert stats["run_retries"] >= 1
        expected = reference_state(5, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
    finally:
        faults.uninstall()
        sim.close()


def test_task_retries_visible_in_statistics():
    rng = random.Random(13)
    levels = random_levels(rng, 5, 4)
    sim = _build_sim(5, levels, kernel_backend="numpy", block_size=4)
    faults.install(FaultPlan(script=[("executor.task", 1)]))
    try:
        sim.update_state()
        assert sim.statistics()["task_retries"] >= 1
        expected = reference_state(5, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
    finally:
        faults.uninstall()
        sim.close()


def test_unrecoverable_fault_storm_raises_fault_injected():
    """With p=1 at the kernel site every retry layer exhausts and the
    original fault surfaces (it is never silently swallowed)."""
    rng = random.Random(14)
    levels = random_levels(rng, 4, 3)
    sim = _build_sim(4, levels, kernel_backend="numpy", block_size=4)
    faults.install(FaultPlan(probabilities={"kernel.run": 1.0}))
    try:
        with pytest.raises(FaultInjected):
            sim.update_state()
    finally:
        faults.uninstall()
        sim.close()


# ---------------------------------------------------------------------------
# trajectory stability: retries must not fork dynamic-circuit randomness
# ---------------------------------------------------------------------------


def _dynamic_session(seed):
    from repro import QTask

    session = QTask(3, block_size=4, num_workers=1, seed=seed, kernel_backend="numpy")
    c = session.add_classical_register("c", 2)
    net1 = session.insert_net()
    for q in range(3):
        session.insert_gate("h", net1, q)
    net2 = session.insert_net()
    session.measure(net2, 0, c[0])
    net3 = session.insert_net()
    session.c_if("x", net3, 2, condition=(c, 1))
    net4 = session.insert_net()
    session.measure(net4, 2, c[1])
    return session, c


def test_retries_do_not_fork_trajectories():
    """A chaos run of a dynamic circuit must observe the *same* trajectory
    as a fault-free run with the same seed: every retry layer rolls the
    classical state back before re-drawing, so injected faults are
    invisible in the outcomes."""
    clean, c_clean = _dynamic_session(seed=5)
    try:
        clean.update_state()
        clean_state = clean.state().copy()
        clean_value = clean.classical_value(c_clean)
    finally:
        clean.close()

    chaotic, c_chaos = _dynamic_session(seed=5)
    faults.install(FaultPlan(seed=8, probabilities={"kernel.run": 0.3}))
    try:
        chaotic.update_state()
        stats = chaotic.statistics()
        assert faults.active_plan().total_injected() > 0
        np.testing.assert_allclose(
            chaotic.state(), clean_state, atol=ATOL, rtol=0
        )
        assert chaotic.classical_value(c_chaos) == clean_value
    finally:
        faults.uninstall()
        chaotic.close()


def test_update_level_retry_preserves_trajectory():
    """A scripted fault storm deep enough to exhaust the run- and
    task-level retries escalates to a whole-update re-execution -- which
    rolls back the keyed streams and redraws the identical outcomes."""
    clean, c_clean = _dynamic_session(seed=6)
    try:
        clean.update_state()
        clean_state = clean.state().copy()
        clean_value = clean.classical_value(c_clean)
    finally:
        clean.close()

    chaotic, c_chaos = _dynamic_session(seed=6)
    # a contiguous block of scripted kernel.run failures: one run fails
    # 6x in a row (exhausting _RUN_FAULT_RETRIES), the task body retries
    # exhaust next, and the fault lands at the update-level retry
    faults.install(FaultPlan(script=[("kernel.run", i) for i in range(1, 29)]))
    try:
        chaotic.update_state()
        stats = chaotic.statistics()
        assert stats["update_retries"] >= 1
        np.testing.assert_allclose(
            chaotic.state(), clean_state, atol=ATOL, rtol=0
        )
        assert chaotic.classical_value(c_chaos) == clean_value
    finally:
        faults.uninstall()
        chaotic.close()


# ---------------------------------------------------------------------------
# circuit breaker: a persistently failing backend degrades down the ladder
# ---------------------------------------------------------------------------


class _BrokenBackend(KernelBackend):
    """A backend whose plan path always dies with an infrastructure error."""

    name = "broken"
    failure_safe = True

    def __init__(self):
        self.attempts = 0

    def execute_plan(self, reader, store, table):
        self.attempts += 1
        raise OSError("worker pool torn down")


def test_breaker_degrades_persistently_failing_backend():
    rng = random.Random(15)
    levels = random_levels(rng, 5, 6)  # several stages => several chunks
    broken = _BrokenBackend()
    sim = _build_sim(5, levels, kernel_backend=broken, block_size=4)
    try:
        sim.update_state()
        stats = sim.statistics()
        # the breaker tripped after breaker_threshold consecutive failures
        transitions = stats["backend_transitions"]
        assert transitions, "breaker never tripped"
        assert transitions[0]["from"] == "broken"
        assert transitions[0]["to"] in ("numba", "numpy", "legacy")
        assert "OSError" in transitions[0]["reason"]
        assert stats["backend_fallbacks"] >= sim.breaker_threshold
        assert broken.attempts >= sim.breaker_threshold
        # the session finished on a healthy rung with the exact state
        assert stats["backend"] != "broken"
        expected = reference_state(5, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
        # later updates stay on the degraded rung (quarantine is sticky)
        before = broken.attempts
        net = sim.circuit.insert_net()
        sim.circuit.insert_gate("h", net, 0)
        sim.update_state()
        assert broken.attempts == before
        expected = reference_state(5, circuit_levels(sim.circuit))
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
    finally:
        sim.close()


# ---------------------------------------------------------------------------
# process pool: SIGKILLed workers, ship timeouts, /dev/shm hygiene
# ---------------------------------------------------------------------------


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - platform without /dev/shm
        return None


@needs_fork
def test_sigkilled_worker_is_respawned_and_update_completes():
    """A worker SIGKILLing itself mid-chunk costs a timeout + respawn, not
    the update."""
    rng = random.Random(16)
    levels = random_levels(rng, 6, 4)
    backend = ProcessPoolBackend(
        num_workers=2, min_ship_amps=0, ship_timeout=2.0, retry_backoff=0.01
    )
    # pin the local store transport: remote-backed stores deliberately skip
    # SharedMemory shipping, which is the very path under test here
    sim = _build_sim(
        6, levels, kernel_backend=backend, block_size=4, store_transport="local"
    )
    faults.install(FaultPlan(script=[("pool.worker.kill", 1)]))
    try:
        sim.update_state()
        stats = sim.statistics()
        assert stats["pool_timeouts"] >= 1
        assert stats["pool_respawns"] >= 1
        assert stats["pool_retries"] >= 1
        expected = reference_state(6, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
    finally:
        faults.uninstall()
        sim.close()


@needs_fork
def test_no_shared_memory_leaks_under_ship_faults():
    """Every SharedMemory segment is unlinked even when ships/receives die."""
    before = _shm_entries()
    if before is None:
        pytest.skip("no /dev/shm on this platform")
    rng = random.Random(18)
    levels = random_levels(rng, 6, 4)
    backend = ProcessPoolBackend(num_workers=2, min_ship_amps=0, retry_backoff=0.01)
    sim = _build_sim(
        6, levels, kernel_backend=backend, block_size=4, store_transport="local"
    )
    faults.install(
        FaultPlan(
            seed=2,
            probabilities={"pool.ship": 0.3, "pool.receive": 0.3},
        )
    )
    try:
        for _ in range(3):
            net = sim.circuit.insert_net()
            sim.circuit.insert_gate("h", net, 0)
            sim.update_state()
        expected = reference_state(6, circuit_levels(sim.circuit))
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
    finally:
        faults.uninstall()
        sim.close()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
