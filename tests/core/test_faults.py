"""Unit tests for the seeded fault-injection plans (``repro.core.faults``).

These cover the plan mechanics in isolation -- determinism, scripted
triggers, armed scoping, env parsing, cross-process pickling.  The
integration side (recovery layers actually surviving injected faults)
lives in ``test_fault_recovery.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import faults
from repro.core.faults import FAULT_SITES, FaultInjected, FaultPlan


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Restore whatever plan (chaos-mode or none) surrounded each test."""
    previous = faults.install(None)
    yield
    faults.install(previous)


# ---------------------------------------------------------------------------
# construction / validation
# ---------------------------------------------------------------------------


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan(probabilities={"kernel.walk": 0.5})
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan(script=[("not.a.site", 1)])


def test_bad_probability_and_occurrence_rejected():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(probability=1.5)
    with pytest.raises(ValueError, match="occurrence"):
        FaultPlan(script=[("kernel.run", 0)])


def test_should_fire_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan().should_fire("bogus")


# ---------------------------------------------------------------------------
# determinism / replay
# ---------------------------------------------------------------------------


def test_probabilistic_stream_is_deterministic_per_seed():
    a = FaultPlan(seed=42, probability=0.3)
    b = FaultPlan(seed=42, probability=0.3)
    seq_a = [a.should_fire("kernel.run")[0] for _ in range(200)]
    seq_b = [b.should_fire("kernel.run")[0] for _ in range(200)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)
    # a different seed produces a different schedule
    c = FaultPlan(seed=43, probability=0.3)
    seq_c = [c.should_fire("kernel.run")[0] for _ in range(200)]
    assert seq_c != seq_a


def test_site_streams_are_independent():
    """Draining one site's stream does not shift another site's draws."""
    lone = FaultPlan(seed=7, probability=0.25)
    mixed = FaultPlan(seed=7, probability=0.25)
    expected = [lone.should_fire("pool.ship")[0] for _ in range(100)]
    got = []
    for _ in range(100):
        mixed.should_fire("kernel.run")  # interleave noise on another site
        got.append(mixed.should_fire("pool.ship")[0])
    assert got == expected


def test_scripted_trigger_fires_on_exact_occurrence():
    plan = FaultPlan(script=[("pool.ship", 3), ("pool.ship", 5)])
    decisions = [plan.should_fire("pool.ship") for _ in range(6)]
    assert [d[0] for d in decisions] == [False, False, True, False, True, False]
    assert [d[1] for d in decisions] == [1, 2, 3, 4, 5, 6]
    # other sites are untouched
    assert plan.should_fire("kernel.run") == (False, 1)


def test_scripted_hits_do_not_shift_probabilistic_draws():
    plain = FaultPlan(seed=5, probability=0.4)
    scripted = FaultPlan(seed=5, probability=0.4, script=[("cow.publish", 2)])
    base = [plain.should_fire("cow.publish")[0] for _ in range(50)]
    with_script = [scripted.should_fire("cow.publish")[0] for _ in range(50)]
    assert with_script[1] is True
    for i in range(50):
        if i != 1:
            assert with_script[i] == base[i]


def test_reset_rewinds_counters_and_streams():
    plan = FaultPlan(seed=11, probability=0.5)
    first = [plan.should_fire("executor.task")[0] for _ in range(30)]
    assert plan.stats()["executor.task"]["calls"] == 30
    plan.reset()
    assert plan.stats() == {}
    assert plan.total_injected() == 0
    replay = [plan.should_fire("executor.task")[0] for _ in range(30)]
    assert replay == first


def test_stats_counts_calls_and_injections():
    plan = FaultPlan(script=[("kernel.run", 1), ("kernel.run", 2)])
    for _ in range(4):
        try:
            plan.fire("kernel.run")
        except FaultInjected:
            pass
    stats = plan.stats()
    assert stats == {"kernel.run": {"calls": 4, "injected": 2}}
    assert plan.total_injected() == 2


# ---------------------------------------------------------------------------
# armed scope + global install
# ---------------------------------------------------------------------------


def test_fire_is_inert_outside_armed_scope():
    faults.install(FaultPlan(probability=1.0))
    # not armed: never raises, and the stream is not even consulted
    faults.fire("kernel.run")
    assert faults.active_plan().stats() == {}
    with faults.armed():
        with pytest.raises(FaultInjected) as exc_info:
            faults.fire("kernel.run")
    assert exc_info.value.site == "kernel.run"
    assert exc_info.value.occurrence == 1
    # scope exited: inert again
    faults.fire("kernel.run")


def test_armed_scope_is_reentrant():
    assert not faults.is_armed()
    with faults.armed():
        assert faults.is_armed()
        with faults.armed():
            assert faults.is_armed()
        assert faults.is_armed()
    assert not faults.is_armed()


def test_install_returns_previous_plan():
    first = FaultPlan(seed=1)
    second = FaultPlan(seed=2)
    assert faults.install(first) is None
    assert faults.install(second) is first
    faults.uninstall()
    assert faults.active_plan() is None


def test_fire_with_no_plan_is_noop_even_when_armed():
    faults.uninstall()
    with faults.armed():
        faults.fire("kernel.run")  # must not raise


# ---------------------------------------------------------------------------
# cross-process transport
# ---------------------------------------------------------------------------


def test_fault_injected_pickles_faithfully():
    """Pool workers raise FaultInjected across the process boundary."""
    original = FaultInjected("pool.worker", 7)
    clone = pickle.loads(pickle.dumps(original))
    assert isinstance(clone, FaultInjected)
    assert clone.site == "pool.worker"
    assert clone.occurrence == 7
    assert str(clone) == str(original)


# ---------------------------------------------------------------------------
# environment parsing (the chaos CI entry point)
# ---------------------------------------------------------------------------


def test_plan_from_env_disabled_without_probability():
    assert faults.plan_from_env({}) is None
    assert faults.plan_from_env({"QTASK_FAULT_P": ""}) is None
    assert faults.plan_from_env({"QTASK_FAULT_P": "0"}) is None


def test_plan_from_env_excludes_worker_kill_by_default():
    plan = faults.plan_from_env({"QTASK_FAULT_P": "1.0", "QTASK_FAULT_SEED": "9"})
    assert plan is not None
    assert plan.seed == 9
    # every site fires at p=1 except the SIGKILL site
    fired, _ = plan.should_fire("kernel.run")
    assert fired
    fired, _ = plan.should_fire("pool.worker.kill")
    assert not fired


def test_plan_from_env_site_whitelist():
    plan = faults.plan_from_env(
        {"QTASK_FAULT_P": "1.0", "QTASK_FAULT_SITES": "pool.ship, pool.worker.kill"}
    )
    assert plan.should_fire("pool.ship")[0]
    assert plan.should_fire("pool.worker.kill")[0]  # explicit opt-in
    assert not plan.should_fire("kernel.run")[0]


def test_fault_sites_registry_is_exhaustive():
    """The documented site tuple is what FaultPlan actually keys on."""
    plan = FaultPlan(probability=1.0)
    for site in FAULT_SITES:
        fired, occurrence = plan.should_fire(site)
        assert fired and occurrence == 1
