"""Tests for the copy-on-write block stores and store chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cow import BlockStore, InitialStateStore, MemoryReport, StoreChain


def _store(dim=32, block=4):
    return BlockStore(dim, block)


def test_write_and_get_block_roundtrip():
    s = _store()
    data = np.arange(4, dtype=complex)
    s.write_block(2, data)
    np.testing.assert_allclose(s.get_block(2), data)
    assert s.has_block(2)
    assert not s.has_block(3)


def test_write_block_copies_input():
    s = _store()
    data = np.zeros(4, dtype=complex)
    s.write_block(0, data)
    data[0] = 99
    assert s.get_block(0)[0] == 0


def test_write_block_wrong_size_raises():
    s = _store()
    with pytest.raises(ValueError):
        s.write_block(0, np.zeros(3, dtype=complex))


def test_write_range_spans_blocks():
    s = _store()
    s.write_range(4, np.arange(8, dtype=complex))
    np.testing.assert_allclose(s.get_block(1), np.arange(4))
    np.testing.assert_allclose(s.get_block(2), np.arange(4, 8))


def test_write_range_unaligned_raises():
    s = _store()
    with pytest.raises(ValueError):
        s.write_range(2, np.zeros(4, dtype=complex))


def test_drop_and_clear():
    s = _store()
    s.write_block(1, np.zeros(4, dtype=complex))
    s.drop_block(1)
    assert not s.has_block(1)
    s.write_block(1, np.zeros(4, dtype=complex))
    s.clear()
    assert s.num_stored_blocks == 0


def test_allocated_bytes_counts_only_stored_blocks():
    s = _store()
    assert s.allocated_bytes() == 0
    s.write_block(0, np.zeros(4, dtype=complex))
    assert s.allocated_bytes() == 4 * 16


# ---------------------------------------------------------------------------
# InitialStateStore
# ---------------------------------------------------------------------------


def test_initial_state_store_block0_has_unit_amplitude():
    init = InitialStateStore(32, 4)
    blk = init.get_block(0)
    assert blk[0] == 1.0
    assert np.all(blk[1:] == 0)


def test_initial_state_store_other_blocks_zero():
    init = InitialStateStore(32, 4)
    for b in range(1, 8):
        assert np.all(init.get_block(b) == 0)


def test_initial_state_store_every_block_defined():
    init = InitialStateStore(32, 4)
    assert all(init.has_block(b) for b in range(8))
    assert not init.has_block(8)


def test_initial_state_store_out_of_range_raises():
    init = InitialStateStore(32, 4)
    with pytest.raises(IndexError):
        init.get_block(9)


def test_initial_state_store_excluded_from_accounting():
    init = InitialStateStore(32, 4)
    init.get_block(0)
    assert init.allocated_bytes() == 0


# ---------------------------------------------------------------------------
# StoreChain
# ---------------------------------------------------------------------------


def _chain_with_layers():
    """initial |0..0>, layer A writes blocks 1-2, layer B overwrites block 2."""
    init = InitialStateStore(32, 4)
    a = BlockStore(32, 4)
    a.write_block(1, np.full(4, 10.0, dtype=complex))
    a.write_block(2, np.full(4, 20.0, dtype=complex))
    b = BlockStore(32, 4)
    b.write_block(2, np.full(4, 99.0, dtype=complex))
    return init, a, b, StoreChain([init, a, b])


def test_chain_resolves_most_recent_writer():
    _, _, _, chain = _chain_with_layers()
    assert chain.resolve_block(2)[0] == 99.0
    assert chain.resolve_block(1)[0] == 10.0
    assert chain.resolve_block(0)[0] == 1.0   # initial state
    assert chain.resolve_block(5)[0] == 0.0


def test_chain_read_range_across_blocks():
    _, _, _, chain = _chain_with_layers()
    out = chain.read_range(4, 11)  # blocks 1 and 2
    np.testing.assert_allclose(out[:4], 10.0)
    np.testing.assert_allclose(out[4:], 99.0)


def test_chain_read_range_partial_block():
    _, _, _, chain = _chain_with_layers()
    out = chain.read_range(5, 6)
    np.testing.assert_allclose(out, [10.0, 10.0])


def test_chain_read_range_invalid_bounds():
    _, _, _, chain = _chain_with_layers()
    with pytest.raises(ValueError):
        chain.read_range(-1, 3)
    with pytest.raises(ValueError):
        chain.read_range(3, 2)
    with pytest.raises(ValueError):
        chain.read_range(0, 32)


def test_chain_full_vector():
    _, _, _, chain = _chain_with_layers()
    vec = chain.full_vector()
    assert vec.shape == (32,)
    assert vec[0] == 1.0 and vec[4] == 10.0 and vec[8] == 99.0


def test_chain_gather_matches_full_vector():
    _, _, _, chain = _chain_with_layers()
    idx = np.array([0, 31, 8, 5, 8, 1], dtype=np.int64)
    np.testing.assert_allclose(chain.gather(idx), chain.full_vector()[idx])


def test_chain_gather_empty():
    _, _, _, chain = _chain_with_layers()
    assert chain.gather(np.array([], dtype=np.int64)).shape == (0,)


def test_chain_requires_consistent_stores():
    with pytest.raises(ValueError):
        StoreChain([BlockStore(32, 4), BlockStore(64, 4)])
    with pytest.raises(ValueError):
        StoreChain([])


def test_chain_read_range_returns_copy():
    _, _, b, chain = _chain_with_layers()
    out = chain.read_range(8, 11)
    out[:] = -1
    assert b.get_block(2)[0] == 99.0


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 7), st.floats(-5, 5)),
        max_size=12,
    ),
    idx=st.lists(st.integers(0, 31), min_size=1, max_size=10),
)
def test_chain_gather_property(writes, idx):
    """gather() always agrees with resolving block by block."""
    init = InitialStateStore(32, 4)
    layers = [BlockStore(32, 4) for _ in range(3)]
    dense = np.zeros(32, dtype=complex)
    dense[0] = 1.0
    # apply writes in layer order so the chain semantics match the dense model
    for layer_order in range(3):
        for layer, block, value in writes:
            if layer != layer_order:
                continue
            data = np.full(4, value, dtype=complex)
            layers[layer].write_block(block, data)
            dense[block * 4 : block * 4 + 4] = value
    chain = StoreChain([init] + layers)
    np.testing.assert_allclose(chain.gather(np.array(idx)), dense[np.array(idx)])


# ---------------------------------------------------------------------------
# MemoryReport
# ---------------------------------------------------------------------------


def test_memory_report_accounting():
    a = BlockStore(32, 4)
    a.write_block(0, np.zeros(4, dtype=complex))
    b = BlockStore(32, 4)
    report = MemoryReport.from_stores([a, b])
    assert report.num_stores == 2
    assert report.stored_blocks == 1
    assert report.total_blocks == 16
    assert report.allocated_bytes == 64
    assert report.dense_bytes == 2 * 32 * 16
    assert 0.9 < report.savings_fraction <= 1.0


def test_memory_report_empty():
    report = MemoryReport.from_stores([])
    assert report.allocated_bytes == 0
    assert report.savings_fraction == 0.0


# ---------------------------------------------------------------------------
# cross-store sharing (session forking)
# ---------------------------------------------------------------------------


def test_share_from_adopts_blocks_by_reference():
    parent = BlockStore(32, 4)
    parent.write_block(0, np.full(4, 1.0, dtype=complex))
    parent.write_block(3, np.full(4, 2.0, dtype=complex))
    child = BlockStore(32, 4)
    adopted = child.share_from(parent)
    assert adopted == 2
    assert child.stored_blocks() == (0, 3)
    assert child.get_block(0) is parent.get_block(0)  # same memory
    assert child.shared_block_count == 2
    assert child.shared_bytes() == child.allocated_bytes()
    assert parent.exported_block_refs() == {0: 1, 3: 1}
    # adopted blocks are sealed read-only (published blocks are immutable)
    with pytest.raises(ValueError):
        child.get_block(0)[0] = 9.0


def test_share_from_copy_on_first_write_releases_refs():
    parent = BlockStore(32, 4)
    for b in range(3):
        parent.write_block(b, np.full(4, b + 1.0, dtype=complex))
    child = BlockStore(32, 4)
    child.share_from(parent)
    child.write_block(1, np.full(4, -1.0, dtype=complex))
    # the child rebound its entry; the parent's block is untouched
    np.testing.assert_allclose(parent.get_block(1), np.full(4, 2.0))
    np.testing.assert_allclose(child.get_block(1), np.full(4, -1.0))
    assert child.get_block(1) is not parent.get_block(1)
    assert child.shared_block_count == 2
    assert parent.exported_block_refs() == {0: 1, 2: 1}
    # drop and clear release the remaining refs
    child.drop_block(0)
    assert parent.exported_block_refs() == {2: 1}
    child.clear()
    assert parent.exported_block_refs() == {}
    assert parent.num_exported_blocks == 0


def test_share_from_multiple_children_refcounts():
    parent = BlockStore(16, 4)
    parent.write_block(2, np.full(4, 5.0, dtype=complex))
    children = [BlockStore(16, 4) for _ in range(3)]
    for c in children:
        c.share_from(parent)
    assert parent.exported_block_refs() == {2: 3}
    children[0].write_block(2, np.zeros(4, dtype=complex))
    assert parent.exported_block_refs() == {2: 2}
    # chained sharing: a grandchild refs the child, not the grandparent
    grandchild = BlockStore(16, 4)
    grandchild.share_from(children[1])
    assert children[1].exported_block_refs() == {2: 1}
    assert parent.exported_block_refs() == {2: 2}


def test_share_from_rejects_mismatched_geometry():
    a = BlockStore(32, 4)
    b = BlockStore(32, 8)
    with pytest.raises(ValueError, match="identical dim"):
        b.share_from(a)


def test_memory_report_accounts_shared_bytes():
    parent = BlockStore(32, 4)
    parent.write_block(0, np.zeros(4, dtype=complex))
    parent.write_block(1, np.zeros(4, dtype=complex))
    child = BlockStore(32, 4)
    child.share_from(parent)
    child.write_block(2, np.zeros(4, dtype=complex))  # owned outright
    report = MemoryReport.from_stores([child])
    assert report.stored_blocks == 3
    assert report.shared_blocks == 2
    assert report.shared_bytes == 2 * 64
    assert report.owned_bytes == 64
    both = MemoryReport.from_stores([parent, child])
    assert both.allocated_bytes == 5 * 64
    assert both.owned_bytes == 3 * 64  # de-duplicated fleet footprint
