"""Tests for the numpy gate kernels against the dense oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gates import (
    DiagonalAction,
    Gate,
    MonomialAction,
    embed_gate_matrix,
    gate_matrix,
)
from repro.core.kernels import (
    ArrayReader,
    apply_action_range,
    apply_diagonal_range,
    apply_gate_dense,
    apply_matrix_dense,
    apply_matvec_range,
    apply_monomial_range,
    extract_local,
    replace_local,
)


def random_state(n, seed=0):
    rng = np.random.default_rng(seed)
    psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return psi / np.linalg.norm(psi)


# ---------------------------------------------------------------------------
# bit helpers
# ---------------------------------------------------------------------------


def test_extract_local_single_qubit():
    idx = np.array([0b000, 0b010, 0b110])
    np.testing.assert_array_equal(extract_local(idx, (1,)), [0, 1, 1])


def test_extract_local_two_qubits_order():
    idx = np.array([0b101])
    # qubits (0, 2): local bit0 = q0 = 1, local bit1 = q2 = 1 -> local 3
    np.testing.assert_array_equal(extract_local(idx, (0, 2)), [3])
    # qubits (2, 0): local bit0 = q2 = 1, local bit1 = q0 = 1 -> local 3
    np.testing.assert_array_equal(extract_local(idx, (2, 0)), [3])
    idx = np.array([0b100])
    np.testing.assert_array_equal(extract_local(idx, (0, 2)), [2])
    np.testing.assert_array_equal(extract_local(idx, (2, 0)), [1])


def test_replace_local_roundtrip():
    idx = np.arange(32, dtype=np.int64)
    qubits = (1, 3)
    local = extract_local(idx, qubits)
    np.testing.assert_array_equal(replace_local(idx, qubits, local), idx)


def test_replace_local_sets_bits():
    idx = np.array([0], dtype=np.int64)
    out = replace_local(idx, (0, 2), np.array([3]))
    assert out[0] == 0b101


# ---------------------------------------------------------------------------
# range kernels vs. dense oracle
# ---------------------------------------------------------------------------

GATE_CASES = [
    ("x", (0,), ()), ("x", (3,), ()), ("y", (2,), ()), ("z", (1,), ()),
    ("h", (2,), ()), ("s", (0,), ()), ("t", (4,), ()), ("sdg", (3,), ()),
    ("rx", (1,), (0.73,)), ("ry", (2,), (1.21,)), ("rz", (3,), (2.9,)),
    ("cx", (0, 4), ()), ("cx", (4, 0), ()), ("cx", (2, 3), ()),
    ("cz", (1, 3), ()), ("swap", (0, 3), ()), ("cp", (2, 4), (0.61,)),
    ("rzz", (1, 2), (0.41,)), ("ccx", (0, 2, 4), ()), ("cswap", (1, 0, 3), ()),
    ("u3", (2,), (0.3, 0.7, 1.1)),
]


@pytest.mark.parametrize("name,qubits,params", GATE_CASES)
def test_apply_action_range_full_vector(name, qubits, params):
    n = 5
    gate = Gate(name, qubits, params)
    psi = random_state(n, seed=hash((name, qubits)) % 1000)
    expected = embed_gate_matrix(gate, n) @ psi
    out = apply_action_range(ArrayReader(psi), 0, (1 << n) - 1, gate.qubits, gate.action())
    np.testing.assert_allclose(out, expected, atol=1e-10)


@pytest.mark.parametrize("name,qubits,params", GATE_CASES)
def test_apply_gate_dense_matches_oracle(name, qubits, params):
    n = 5
    gate = Gate(name, qubits, params)
    psi = random_state(n, seed=hash((name, qubits, "d")) % 1000)
    expected = embed_gate_matrix(gate, n) @ psi
    np.testing.assert_allclose(apply_gate_dense(psi, gate, n), expected, atol=1e-10)


def test_apply_action_range_subrange_diagonal():
    """Diagonal kernels can be applied to any subrange independently."""
    n = 4
    gate = Gate("cz", (1, 3))
    psi = random_state(n, 7)
    expected = embed_gate_matrix(gate, n) @ psi
    out = apply_action_range(ArrayReader(psi), 4, 11, gate.qubits, gate.action())
    np.testing.assert_allclose(out, expected[4:12], atol=1e-12)


def test_apply_action_range_subrange_monomial_orbit_closed():
    """A monomial kernel applied to an orbit-closed range matches the oracle."""
    n = 4
    gate = Gate("cx", (3, 1))  # control q3, target q1: orbit within upper half
    psi = random_state(n, 8)
    expected = embed_gate_matrix(gate, n) @ psi
    out = apply_action_range(ArrayReader(psi), 8, 15, gate.qubits, gate.action())
    np.testing.assert_allclose(out, expected[8:16], atol=1e-12)


def test_apply_diagonal_range_uses_phases():
    gate = Gate("z", (0,))
    psi = np.ones(4, dtype=complex)
    out = apply_diagonal_range(ArrayReader(psi), 0, 3, gate.qubits, gate.action())
    np.testing.assert_allclose(out, [1, -1, 1, -1])


def test_apply_monomial_range_swaps():
    gate = Gate("x", (1,))
    psi = np.array([1, 2, 3, 4], dtype=complex)
    out = apply_monomial_range(ArrayReader(psi), 0, 3, gate.qubits, gate.action())
    np.testing.assert_allclose(out, [3, 4, 1, 2])


def test_apply_matvec_range_single_block():
    n = 3
    gate = Gate("h", (2,))
    psi = random_state(n, 5)
    expected = embed_gate_matrix(gate, n) @ psi
    # compute only the second half of the output
    out = apply_matvec_range(ArrayReader(psi), 4, 7, gate.qubits, gate.matrix())
    np.testing.assert_allclose(out, expected[4:], atol=1e-12)


def test_apply_matrix_dense_two_qubit_nonadjacent():
    n = 6
    gate = Gate("swap", (1, 5))
    psi = random_state(n, 11)
    expected = embed_gate_matrix(gate, n) @ psi
    np.testing.assert_allclose(
        apply_matrix_dense(psi, gate.matrix(), gate.qubits, n), expected, atol=1e-10
    )


def test_apply_action_range_unknown_action_type():
    with pytest.raises(TypeError):
        apply_action_range(ArrayReader(np.zeros(4, dtype=complex)), 0, 3, (0,), object())


# ---------------------------------------------------------------------------
# composition property: applying two gates sequentially == product operator
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    first=st.sampled_from(["h", "x", "t", "rz"]),
    second=st.sampled_from(["cx", "cz", "swap"]),
    q1=st.integers(0, 3),
)
def test_sequential_application_matches_operator_product(seed, first, second, q1):
    n = 4
    params = (0.37,) if first == "rz" else ()
    g1 = Gate(first, (q1,), params)
    g2 = Gate(second, (0, 3) if q1 not in (0, 3) else (1, 2))
    psi = random_state(n, seed)
    expected = embed_gate_matrix(g2, n) @ (embed_gate_matrix(g1, n) @ psi)
    out = apply_gate_dense(apply_gate_dense(psi, g1, n), g2, n)
    np.testing.assert_allclose(out, expected, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), name=st.sampled_from(["x", "z", "cx", "swap", "ccx"]))
def test_non_superposition_kernels_preserve_norm(seed, name):
    n = 5
    rng = np.random.default_rng(seed)
    arity = {"x": 1, "z": 1, "cx": 2, "swap": 2, "ccx": 3}[name]
    qubits = tuple(rng.choice(n, size=arity, replace=False).tolist())
    gate = Gate(name, qubits)
    psi = random_state(n, seed)
    out = apply_action_range(ArrayReader(psi), 0, 31, gate.qubits, gate.action())
    assert abs(np.linalg.norm(out) - 1.0) < 1e-10
