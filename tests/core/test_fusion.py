"""Tests for the stage-fusion engine: action composition, fused stages,
strided kernels and the simulator's greedy fusion / dissolution machinery."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.cow import InitialStateStore, StoreChain
from repro.core.gates import (
    DiagonalAction,
    Gate,
    MonomialAction,
    compose_actions,
    embed_gate_matrix,
    fuse_gate_actions,
)
from repro.core.kernels import ArrayReader, apply_action_range
from repro.core.simulator import QTaskSimulator
from repro.core.stage import FusedUnitaryStage

from ..conftest import assert_states_close, reference_state


def dense_op(gates, n):
    m = np.eye(1 << n, dtype=complex)
    for g in gates:
        m = embed_gate_matrix(g, n) @ m
    return m


def action_as_matrix(action, qubits, n):
    """Dense operator of a classified action via a synthetic gate application."""
    dim = 1 << n
    out = np.empty((dim, dim), dtype=complex)
    for col in range(dim):
        e = np.zeros(dim, dtype=complex)
        e[col] = 1.0
        out[:, col] = apply_action_range(ArrayReader(e), 0, dim - 1, qubits, action)
    return out


# ---------------------------------------------------------------------------
# compose_actions: the fusion algebra
# ---------------------------------------------------------------------------


def test_diagonal_diagonal_composes_to_diagonal():
    a, b = Gate("s", (0,)), Gate("t", (1,))
    action, qubits = compose_actions(a.action(), a.qubits, b.action(), b.qubits)
    assert isinstance(action, DiagonalAction)
    assert qubits == (0, 1)
    np.testing.assert_allclose(
        action_as_matrix(action, qubits, 2), dense_op([a, b], 2), atol=1e-12
    )


def test_monomial_monomial_composes_to_monomial():
    a, b = Gate("cx", (0, 1)), Gate("swap", (1, 2))
    action, qubits = compose_actions(a.action(), a.qubits, b.action(), b.qubits)
    assert isinstance(action, MonomialAction)
    assert qubits == (0, 1, 2)
    np.testing.assert_allclose(
        action_as_matrix(action, qubits, 3), dense_op([a, b], 3), atol=1e-12
    )


def test_diagonal_absorbs_into_monomial_factors():
    a, b = Gate("x", (0,)), Gate("rz", (0,), (0.7,))
    action, qubits = compose_actions(a.action(), a.qubits, b.action(), b.qubits)
    assert isinstance(action, MonomialAction)
    np.testing.assert_allclose(
        action_as_matrix(action, qubits, 1), dense_op([a, b], 1), atol=1e-12
    )


def test_involution_collapses_to_identity_diagonal():
    a = Gate("x", (1,))
    action, qubits = compose_actions(a.action(), a.qubits, a.action(), a.qubits)
    # x . x == identity: permutation vanishes, classified back to diagonal
    assert isinstance(action, DiagonalAction)
    assert action.touched_locals() == ()


def test_composition_is_order_sensitive():
    a, b = Gate("x", (0,)), Gate("s", (0,))
    ab, q = compose_actions(a.action(), a.qubits, b.action(), b.qubits)
    ba, _ = compose_actions(b.action(), b.qubits, a.action(), a.qubits)
    assert not np.allclose(
        action_as_matrix(ab, q, 1), action_as_matrix(ba, q, 1), atol=1e-12
    )


def test_fuse_gate_actions_rejects_superposition():
    with pytest.raises(ValueError):
        fuse_gate_actions([Gate("h", (0,))])
    with pytest.raises(ValueError):
        fuse_gate_actions([Gate("z", (0,)), Gate("h", (0,))])
    with pytest.raises(ValueError):
        fuse_gate_actions([])


def test_fuse_gate_actions_random_runs(rng):
    pool = [
        Gate("z", (0,)), Gate("s", (1,)), Gate("t", (2,)), Gate("x", (0,)),
        Gate("y", (2,)), Gate("cx", (0, 2)), Gate("cz", (1, 2)),
        Gate("swap", (0, 1)), Gate("rz", (1,), (0.3,)),
        Gate("cp", (2, 0), (1.1,)), Gate("ccx", (0, 1, 2)),
    ]
    for _ in range(25):
        gates = [rng.choice(pool) for _ in range(rng.randint(2, 5))]
        action, qubits = fuse_gate_actions(gates)
        np.testing.assert_allclose(
            action_as_matrix(action, qubits, 3), dense_op(gates, 3), atol=1e-10
        )


# ---------------------------------------------------------------------------
# FusedUnitaryStage
# ---------------------------------------------------------------------------


def run_stage(stage, reader):
    stage.prepare(reader)
    for spec in stage.partition_specs():
        for task in stage.block_tasks(reader, spec.block_range):
            task()


def test_fused_stage_matches_dense(np_rng):
    n = 4
    gates = [Gate("z", (3,)), Gate("cx", (3, 1)), Gate("s", (1,))]
    stage = FusedUnitaryStage(gates, n, 4)
    psi = np_rng.normal(size=16) + 1j * np_rng.normal(size=16)
    init = InitialStateStore(16, 4)
    for b in range(4):
        init._blocks[b] = psi[b * 4 : (b + 1) * 4].copy()
    chain = StoreChain([init])
    run_stage(stage, chain)
    out = StoreChain([init, stage.store]).full_vector()
    np.testing.assert_allclose(out, dense_op(gates, n) @ psi, atol=1e-10)


def test_fused_stage_label_and_gate_list():
    gates = [Gate("z", (0,)), Gate("x", (1,))]
    stage = FusedUnitaryStage(gates, 3, 4)
    assert stage.gate_list() == tuple(gates)
    assert stage.label().startswith("fused{")
    assert stage.kind == "fused"


# ---------------------------------------------------------------------------
# strided kernels agree with the general gather path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,qubits", [
    ("z", (0,)), ("z", (5,)), ("x", (0,)), ("x", (5,)), ("y", (3,)),
    ("cz", (1, 4)), ("cx", (4, 1)), ("cx", (1, 4)), ("swap", (0, 5)),
    ("ccx", (0, 3, 5)), ("cp", (5, 4)),
])
def test_strided_kernels_match_dense_per_block(name, qubits, np_rng):
    n = 6
    params = (0.9,) if name == "cp" else ()
    gate = Gate(name, qubits, params)
    action = gate.action()
    psi = np_rng.normal(size=64) + 1j * np_rng.normal(size=64)
    ref = embed_gate_matrix(gate, n) @ psi
    for block in (4, 8, 32, 64):
        out = np.concatenate([
            apply_action_range(
                ArrayReader(psi), b * block, (b + 1) * block - 1, qubits, action
            )
            for b in range(64 // block)
        ])
        np.testing.assert_allclose(out, ref, atol=1e-12)


def test_unaligned_range_falls_back_to_gather(np_rng):
    gate = Gate("cz", (0, 3))
    psi = np_rng.normal(size=64) + 1j * np_rng.normal(size=64)
    ref = embed_gate_matrix(gate, 6) @ psi
    out = apply_action_range(ArrayReader(psi), 5, 41, gate.qubits, gate.action())
    np.testing.assert_allclose(out, ref[5:42], atol=1e-12)


# ---------------------------------------------------------------------------
# simulator-level fusion
# ---------------------------------------------------------------------------


def make_fused_sim(n, levels, **kwargs):
    ckt = Circuit(n)
    sim = QTaskSimulator(ckt, fusion=True, **kwargs)
    ckt.from_levels(levels)
    return ckt, sim


def test_consecutive_diagonal_run_fuses_into_one_stage():
    levels = [[Gate("z", (0,))], [Gate("s", (0,))], [Gate("cp", (0, 1), (0.4,))]]
    ckt, sim = make_fused_sim(3, levels, block_size=4)
    stats = sim.statistics()
    assert stats["num_stages"] == 1
    assert stats["num_fused_stages"] == 1
    sim.update_state()
    assert_states_close(sim.state(), reference_state(3, levels), atol=1e-10)
    sim.close()


def test_fusion_respects_max_fused_qubits():
    levels = [[Gate("cz", (0, 1))], [Gate("cz", (2, 3))], [Gate("cz", (4, 5))]]
    ckt, sim = make_fused_sim(6, levels, block_size=4, max_fused_qubits=4)
    # the third cz would push the union to 6 qubits: a new stage must start
    assert sim.statistics()["num_stages"] == 2
    sim.close()


def test_superposition_gate_breaks_the_run():
    levels = [[Gate("z", (0,))], [Gate("h", (1,))], [Gate("s", (0,))]]
    ckt, sim = make_fused_sim(3, levels, block_size=4)
    stats = sim.statistics()
    assert stats["num_fused_stages"] == 0
    assert stats["num_stages"] == 3
    sim.update_state()
    assert_states_close(sim.state(), reference_state(3, levels), atol=1e-10)
    sim.close()


def test_removing_a_member_dissolves_the_fused_stage():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=4, fusion=True)
    n1, n2, n3 = ckt.insert_net(), ckt.insert_net(), ckt.insert_net()
    g1 = ckt.insert_gate("z", n1, 0)
    g2 = ckt.insert_gate("cx", n2, 0, 1)
    g3 = ckt.insert_gate("s", n3, 1)
    assert sim.statistics()["num_fused_stages"] == 1
    sim.update_state()
    ckt.remove_gate(g2)
    assert sim.statistics()["num_fused_stages"] == 0
    assert sim.statistics()["num_stages"] == 2
    sim.update_state()
    assert_states_close(
        sim.state(),
        reference_state(3, [[g1.gate], [g3.gate]]),
        atol=1e-10,
    )
    sim.close()


def test_mid_circuit_insert_dissolves_conflicting_fusion():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=4, fusion=True)
    n1 = ckt.insert_net()
    n2 = ckt.insert_net()
    n3 = ckt.insert_net()
    ckt.insert_gate("z", n1, 0)
    ckt.insert_gate("cx", n3, 0, 1)  # fuses with the z across the empty net
    assert sim.statistics()["num_fused_stages"] == 1
    sim.update_state()
    # a gate on qubit 0 lands between the fused members: the run must split
    ckt.insert_gate("x", n2, 0)
    sim.update_state()
    expected = reference_state(
        3, [[Gate("z", (0,))], [Gate("x", (0,))], [Gate("cx", (0, 1))]]
    )
    assert_states_close(sim.state(), expected, atol=1e-10)
    sim.close()


def test_fusion_disabled_for_dependent_nets():
    ckt = Circuit(2, allow_net_dependencies=True)
    sim = QTaskSimulator(ckt, fusion=True)
    assert sim.fusion is False
    sim.close()


def test_fusion_knob_in_statistics_and_facade():
    from repro import QTask

    with QTask(3, fusion=True, max_fused_qubits=5) as ckt:
        stats = ckt.statistics()
        assert stats["fusion"] is True
        assert ckt.simulator.max_fused_qubits == 5
    with QTask(3) as ckt:
        assert ckt.statistics()["fusion"] is False
