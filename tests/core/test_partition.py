"""Tests for partition derivation (§III.C), including the paper's examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockRange
from repro.core.gates import Gate, MatVecAction, classify_matrix, gate_matrix
from repro.core.partition import (
    PartitionSpec,
    derive_partitions,
    matvec_partitions,
    unit_layout_of,
)


def parts(gate: Gate, n: int, block: int):
    return derive_partitions(gate.action(), gate.qubits, n, block)


def ranges(specs):
    return [(p.block_range.first, p.block_range.last) for p in specs]


# ---------------------------------------------------------------------------
# The paper's Figure 4/5 example: 5 qubits, block size 4
# ---------------------------------------------------------------------------


def test_paper_g6_one_partition_four_blocks_two_tasks():
    specs = parts(Gate("cx", (4, 3)), 5, 4)     # G6: swap 10xxx <-> 11xxx
    assert ranges(specs) == [(4, 7)]
    assert specs[0].num_unit_tasks == 2


def test_paper_g7_two_partitions_of_two_blocks():
    specs = parts(Gate("cx", (4, 1)), 5, 4)     # G7
    assert ranges(specs) == [(4, 5), (6, 7)]
    assert all(p.num_unit_tasks == 1 for p in specs)


def test_paper_g8_two_partitions_of_two_blocks():
    specs = parts(Gate("cx", (3, 2)), 5, 4)     # G8: first partition blocks [2,3]
    assert ranges(specs) == [(2, 3), (6, 7)]


def test_paper_g9_two_partitions_of_three_blocks():
    specs = parts(Gate("cx", (2, 0)), 5, 4)     # G9
    assert ranges(specs) == [(1, 3), (5, 7)]


def test_paper_hadamard_net_one_partition_per_block():
    specs = matvec_partitions(5, 4)
    assert ranges(specs) == [(b, b) for b in range(8)]
    assert all(p.num_unit_tasks == 1 for p in specs)


def test_superposition_gate_delegates_to_matvec_layout():
    specs = parts(Gate("h", (2,)), 5, 4)
    assert ranges(specs) == [(b, b) for b in range(8)]


# ---------------------------------------------------------------------------
# unit layouts
# ---------------------------------------------------------------------------


def test_unit_layout_of_diagonal_z():
    layout = unit_layout_of(classify_matrix(gate_matrix("z")))
    assert layout.unit_locals == ((1,),)


def test_unit_layout_of_rz_touches_both_locals():
    layout = unit_layout_of(classify_matrix(gate_matrix("rz", 0.7)))
    assert layout.unit_locals == ((0,), (1,))


def test_unit_layout_of_cx_is_one_pair():
    layout = unit_layout_of(classify_matrix(gate_matrix("cx")))
    assert layout.unit_locals == ((1, 3),)


def test_unit_layout_of_identity_is_empty():
    layout = unit_layout_of(classify_matrix(gate_matrix("id")))
    assert layout.num_types == 0


def test_unit_layout_rejects_superposition_actions():
    with pytest.raises(TypeError):
        unit_layout_of(MatVecAction(num_qubits=1, matrix=gate_matrix("h")))


# ---------------------------------------------------------------------------
# structural behaviour
# ---------------------------------------------------------------------------


def test_identity_gate_has_no_partitions():
    assert parts(Gate("id", (0,)), 5, 4) == []


def test_x_gate_low_qubit_small_blocks():
    # X on qubit 0 with B=2: tasks of 2 amplitude pairs span 2 blocks each,
    # giving one partition per pair of consecutive blocks.
    specs = parts(Gate("x", (0,)), 3, 2)
    assert ranges(specs) == [(0, 1), (2, 3)]
    assert all(p.num_unit_tasks == 1 for p in specs)


def test_x_gate_high_qubit_merges_everything():
    # X on the top qubit pairs the two halves of the vector: one partition.
    specs = parts(Gate("x", (4,)), 5, 4)
    assert ranges(specs) == [(0, 7)]


def test_z_gate_high_qubit_touches_upper_half_only():
    specs = parts(Gate("z", (4,)), 5, 4)
    assert ranges(specs) == [(4, 4), (5, 5), (6, 6), (7, 7)]


def test_cz_touches_quarter_of_blocks():
    specs = parts(Gate("cz", (4, 3)), 5, 4)
    assert ranges(specs) == [(6, 6), (7, 7)]


def test_block_size_larger_than_state_gives_single_partition():
    specs = parts(Gate("cx", (0, 1)), 3, 256)
    assert ranges(specs) == [(0, 0)]


def test_partition_block_count_and_num_blocks():
    specs = parts(Gate("cx", (4, 3)), 5, 4)
    assert specs[0].num_blocks == 4


def test_enumeration_guard_raises_for_huge_requests():
    from repro.core import partition as partition_module

    original = partition_module.MAX_ENUMERATED_UNITS
    partition_module.MAX_ENUMERATED_UNITS = 4
    try:
        with pytest.raises(MemoryError):
            derive_partitions(Gate("x", (0,)).action(), (0,), 5, 2)
    finally:
        partition_module.MAX_ENUMERATED_UNITS = original


# ---------------------------------------------------------------------------
# property-based invariants
# ---------------------------------------------------------------------------

GATE_POOL = ["x", "y", "z", "s", "t", "cx", "cz", "swap", "rz", "ccx"]


@settings(max_examples=120, deadline=None)
@given(
    name=st.sampled_from(GATE_POOL),
    n=st.integers(3, 8),
    log_block=st.integers(0, 6),
    seed=st.integers(0, 1000),
)
def test_partition_invariants(name, n, log_block, seed):
    """Partitions are sorted, disjoint, and cover every touched amplitude."""
    rng = np.random.default_rng(seed)
    arity = {"cx": 2, "cz": 2, "swap": 2, "ccx": 3}.get(name, 1)
    if arity > n:
        return
    qubits = tuple(rng.choice(n, size=arity, replace=False).tolist())
    params = (0.37,) if name == "rz" else ()
    gate = Gate(name, qubits, params)
    block = 1 << log_block
    specs = derive_partitions(gate.action(), gate.qubits, n, block)

    # sorted and pairwise disjoint
    for a, b in zip(specs, specs[1:]):
        assert a.block_range.last < b.block_range.first

    # every touched amplitude lies inside some partition, together with its
    # whole orbit (partitions are orbit-closed)
    action = gate.action()
    dim = 1 << n
    covered = np.zeros(dim, dtype=bool)
    for p in specs:
        lo, hi = p.block_range.index_bounds(block, dim)
        covered[lo : hi + 1] = True

    from repro.core.kernels import extract_local, replace_local

    idx = np.arange(dim, dtype=np.int64)
    local = extract_local(idx, gate.qubits)
    if hasattr(action, "touched_locals"):
        touched_mask = np.isin(local, action.touched_locals())
        assert covered[touched_mask].all()
    # orbit closure: for monomial actions the permutation image of a covered
    # index is also covered
    if hasattr(action, "perm"):
        perm = np.asarray(action.perm)
        image = replace_local(idx, gate.qubits, perm[local])
        assert covered[image[covered]].all()


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 8), log_block=st.integers(0, 8))
def test_matvec_partitions_cover_every_block_exactly_once(n, log_block):
    block = 1 << log_block
    specs = matvec_partitions(n, block)
    blocks = [b for p in specs for b in p.block_range.blocks()]
    expected = max(1, (1 << n) // block)
    assert blocks == list(range(expected))
