"""Unit tests for the block directory, directory readers and store writes."""

import numpy as np
import pytest

from repro.core.blocks import aligned_block_runs
from repro.core.cow import (
    BlockDirectory,
    BlockStore,
    DirectoryReader,
    InitialStateStore,
    StoreChain,
)


class _Owner:
    """Minimal stage stand-in: a store plus a global sequence index."""

    def __init__(self, seq, dim=32, block=4):
        self.seq = seq
        self.store = BlockStore(dim, block)


def _directory_with_layers():
    """initial |0..0>, seq0 writes blocks 1-2, seq1 overwrites block 2."""
    init = InitialStateStore(32, 4)
    directory = BlockDirectory(init)
    a, b = _Owner(0), _Owner(1)
    directory.attach(a)
    directory.attach(b)
    a.store.write_block(1, np.full(4, 10.0, dtype=complex))
    a.store.write_block(2, np.full(4, 20.0, dtype=complex))
    b.store.write_block(2, np.full(4, 99.0, dtype=complex))
    return init, a, b, directory


# ---------------------------------------------------------------------------
# directory maintenance + resolution
# ---------------------------------------------------------------------------


def test_resolve_store_picks_most_recent_writer():
    init, a, b, d = _directory_with_layers()
    assert d.resolve_store(2, 2) is b.store
    assert d.resolve_store(2, 1) is a.store   # "as of" seq 1: b excluded
    assert d.resolve_store(1, 2) is a.store
    assert d.resolve_store(0, 2) is init      # nobody wrote block 0
    assert d.resolve_store(2, 0) is init      # before any writer


def test_resolve_block_values():
    _, _, _, d = _directory_with_layers()
    assert d.resolve_block(2, 2)[0] == 99.0
    assert d.resolve_block(2, 1)[0] == 20.0
    assert d.resolve_block(0, 2)[0] == 1.0


def test_drop_and_clear_update_directory():
    _, a, b, d = _directory_with_layers()
    b.store.drop_block(2)
    assert d.resolve_store(2, 2) is a.store
    a.store.clear()
    assert d.resolve_store(2, 2) is d.initial
    assert d.writers_of(1) == ()


def test_detach_purges_entries():
    _, a, b, d = _directory_with_layers()
    d.detach(a)
    assert d.resolve_store(1, 2) is d.initial
    assert d.resolve_store(2, 2) is b.store
    # a detached store no longer reports writes
    a.store.write_block(3, np.zeros(4, dtype=complex))
    assert d.writers_of(3) == ()


def test_attach_adopts_existing_blocks():
    init = InitialStateStore(32, 4)
    d = BlockDirectory(init)
    o = _Owner(0)
    o.store.write_block(5, np.full(4, 7.0, dtype=complex))
    d.attach(o)
    assert d.resolve_store(5, 1) is o.store


def test_writers_sorted_by_seq_regardless_of_write_order():
    init = InitialStateStore(32, 4)
    d = BlockDirectory(init)
    owners = [_Owner(s) for s in (3, 0, 2, 1)]
    for o in owners:
        d.attach(o)
        o.store.write_block(0, np.full(4, float(o.seq), dtype=complex))
    assert [o.seq for o in d.writers_of(0)] == [0, 1, 2, 3]
    for k in range(5):
        expect = init if k == 0 else d.resolve_store(0, k)
        if k:
            assert expect.get_block(0)[0] == k - 1


def test_owner_runs_groups_consecutive_blocks():
    _, a, b, d = _directory_with_layers()
    runs = list(d.owner_runs(0, 7, 2))
    assert runs == [(d.initial, 0, 0), (a.store, 1, 1), (b.store, 2, 2),
                    (d.initial, 3, 7)]


# ---------------------------------------------------------------------------
# DirectoryReader == StoreChain
# ---------------------------------------------------------------------------


def test_directory_reader_matches_chain():
    init, a, b, d = _directory_with_layers()
    chain = StoreChain([init, a.store, b.store])
    reader = DirectoryReader(d, 2)
    np.testing.assert_array_equal(reader.full_vector(), chain.full_vector())
    np.testing.assert_array_equal(reader.read_range(5, 11), chain.read_range(5, 11))
    idx = np.array([0, 31, 8, 5, 8, 1], dtype=np.int64)
    np.testing.assert_array_equal(reader.gather(idx), chain.gather(idx))


def test_directory_reader_invalid_range():
    _, _, _, d = _directory_with_layers()
    reader = DirectoryReader(d, 2)
    with pytest.raises(ValueError):
        reader.read_range(-1, 3)
    with pytest.raises(ValueError):
        reader.read_range(3, 2)
    with pytest.raises(ValueError):
        reader.read_range(0, 32)


def test_directory_reader_returns_copy():
    _, _, b, d = _directory_with_layers()
    out = DirectoryReader(d, 2).read_range(8, 11)
    out[:] = -1
    assert b.store.get_block(2)[0] == 99.0


# ---------------------------------------------------------------------------
# single-copy / zero-copy writes
# ---------------------------------------------------------------------------


def test_write_block_default_still_copies():
    s = BlockStore(32, 4)
    data = np.zeros(4, dtype=complex)
    s.write_block(0, data)
    data[0] = 99
    assert s.get_block(0)[0] == 0


def test_write_block_nocopy_adopts_array():
    s = BlockStore(32, 4)
    data = np.zeros(4, dtype=complex)
    s.write_block(0, data, copy=False)
    assert s.get_block(0) is data


def test_write_block_dtype_conversion_is_single_copy():
    s = BlockStore(32, 4)
    data = np.arange(4, dtype=np.float64)
    s.write_block(0, data)
    got = s.get_block(0)
    assert got.dtype == np.complex128
    np.testing.assert_allclose(got, data)


def test_write_block_out_of_range_raises():
    s = BlockStore(32, 4)
    with pytest.raises(ValueError):
        s.write_block(8, np.zeros(4, dtype=complex))


def test_write_range_nocopy_stores_views():
    s = BlockStore(32, 4)
    data = np.arange(8, dtype=complex)
    s.write_range(4, data, copy=False)
    assert s.get_block(1).base is data
    assert s.get_block(2).base is data
    np.testing.assert_array_equal(s.get_block(2), np.arange(4, 8))


def test_write_range_copy_detaches_from_caller():
    s = BlockStore(32, 4)
    data = np.arange(8, dtype=complex)
    s.write_range(4, data)
    data[:] = -1
    np.testing.assert_array_equal(s.get_block(1), np.arange(4))


def test_write_range_partial_block_raises():
    s = BlockStore(32, 4)
    with pytest.raises(ValueError):
        s.write_range(4, np.zeros(6, dtype=complex))


def test_write_range_past_end_raises():
    s = BlockStore(32, 4)
    with pytest.raises(ValueError):
        s.write_range(28, np.zeros(8, dtype=complex))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def test_initial_read_dense_matches_blocks():
    init = InitialStateStore(32, 4)
    dense = init.read_dense(0, 31)
    assert not init._blocks  # read_dense must not cache zero blocks
    np.testing.assert_array_equal(dense, StoreChain([init]).full_vector())
    np.testing.assert_array_equal(init.read_dense(5, 11), dense[5:12])
    assert init.allocated_bytes() == 0


@pytest.mark.parametrize("first,last,cap", [
    (0, 63, 64), (3, 17, 8), (5, 5, 64), (1, 62, 16), (7, 8, 4),
])
def test_aligned_block_runs_cover_exactly(first, last, cap):
    runs = aligned_block_runs(first, last, cap)
    covered = []
    for lo, hi in runs:
        size = hi - lo + 1
        assert size & (size - 1) == 0, "run length must be a power of two"
        assert lo % size == 0, "run must be aligned to its length"
        assert size <= cap
        covered.extend(range(lo, hi + 1))
    assert covered == list(range(first, last + 1))


def test_aligned_block_runs_bad_cap():
    with pytest.raises(ValueError):
        aligned_block_runs(0, 7, 3)
