"""Durable session checkpoints: save, restore, resume, reject corruption.

The checkpoint contract (``repro.core.snapshot``):

* a restored session holds the exact checkpointed state without
  re-simulating anything (``num_updates`` > 0, blocks loaded from disk),
* it is immediately editable, and subsequent updates are *incremental*
  from the loaded blocks,
* a restored session is observationally a fork taken at checkpoint time:
  under identical edits it evolves identically to such a fork (keyed
  trajectory streams restart, exactly like ``QTask.fork``),
* damaged files -- bad magic, truncation, flipped payload bytes, wrong
  version -- raise :class:`CheckpointError` instead of resuming garbage,
* saving is atomic: a crash mid-save can never clobber a good checkpoint.
"""

from __future__ import annotations

import json
import os
import random
import struct

import numpy as np
import pytest

from repro import CheckpointError, QTask
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.core.snapshot import (
    CHECKPOINT_MAGIC,
    restore_simulator,
    save_checkpoint,
)

from ..conftest import (
    assert_states_close,
    circuit_levels,
    random_levels,
    reference_state,
)

ATOL = 1e-12


def _fill_session(session: QTask, levels) -> None:
    """Insert conftest-style levels through the facade circuit."""
    session.circuit.from_levels(levels)


KNOB_COMBOS = [
    pytest.param(
        dict(block_size=4),
        id="defaults-bs4",
    ),
    pytest.param(
        dict(block_size=4, fusion=True),
        id="fusion-bs4",
    ),
    pytest.param(
        dict(block_size=8, block_directory=False),
        id="chain-bs8",
    ),
    pytest.param(
        dict(block_size=4, copy_on_write=False),
        id="dense-bs4",
    ),
    pytest.param(
        dict(block_size=16, fusion=True, block_directory=False),
        id="fusion-chain-bs16",
    ),
]


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("knobs", KNOB_COMBOS)
def test_round_trip_preserves_state_and_structure(tmp_path, knobs):
    num_qubits = 6
    rng = random.Random(20260807)
    levels = random_levels(rng, num_qubits, 6)
    path = str(tmp_path / "session.qtckpt")
    with QTask(num_qubits, num_workers=1, **knobs) as session:
        _fill_session(session, levels)
        session.update_state()
        original_state = session.state().copy()
        original_stats = session.statistics()
        assert session.checkpoint(path) == path

    restored = QTask.restore(path, num_workers=1)
    try:
        # the checkpointed amplitudes load bit-exactly, without simulating
        np.testing.assert_array_equal(restored.state(), original_state)
        stats = restored.statistics()
        for key in ("num_stages", "num_nodes", "block_size", "num_fused_stages"):
            assert stats[key] == original_stats[key], key
        assert stats["num_updates"] >= 1
        assert stats["plans_built"] == 0  # nothing was re-simulated
    finally:
        restored.close()


def test_restore_resumes_incrementally(tmp_path):
    """Edits after restore re-simulate only the dirty cone."""
    num_qubits = 6
    rng = random.Random(31)
    levels = random_levels(rng, num_qubits, 6)
    path = str(tmp_path / "session.qtckpt")
    with QTask(num_qubits, block_size=4, num_workers=1) as session:
        _fill_session(session, levels)
        session.update_state()
        session.checkpoint(path)

    restored = QTask.restore(path, num_workers=1)
    try:
        net = restored.insert_net()
        restored.insert_gate("rz", net, 0, params=[0.5])
        report = restored.update_state()
        assert report.was_incremental
        assert report.affected_partitions < report.total_partitions
        expected = reference_state(num_qubits, circuit_levels(restored.circuit))
        assert_states_close(restored.state(), expected, atol=1e-10)
    finally:
        restored.close()


def test_checkpoint_flushes_pending_modifiers(tmp_path):
    """Checkpointing an un-simulated session first brings it up to date."""
    num_qubits = 5
    rng = random.Random(32)
    levels = random_levels(rng, num_qubits, 4)
    path = str(tmp_path / "session.qtckpt")
    with QTask(num_qubits, block_size=4, num_workers=1) as session:
        _fill_session(session, levels)
        session.checkpoint(path)  # no update_state() before this

    restored = QTask.restore(path, num_workers=1)
    try:
        expected = reference_state(num_qubits, levels)
        assert_states_close(restored.state(), expected, atol=1e-10)
    finally:
        restored.close()


def test_dynamic_circuit_round_trip(tmp_path):
    """Measure/reset/c_if stages, classical registers and recorded
    outcomes all survive the round trip."""
    path = str(tmp_path / "dynamic.qtckpt")
    with QTask(3, block_size=4, num_workers=1, seed=7) as session:
        c = session.add_classical_register("c", 2)
        net1 = session.insert_net()
        session.insert_gate("h", net1, 0)
        session.insert_gate("h", net1, 1)
        net2 = session.insert_net()
        session.measure(net2, 0, c[0])
        net3 = session.insert_net()
        session.c_if("x", net3, 2, condition=(c, 1))
        net4 = session.insert_net()
        session.measure(net4, 2, c[1])
        session.update_state()
        original_state = session.state().copy()
        original_value = session.classical_value(c)
        session.checkpoint(path)

    restored = QTask.restore(path, num_workers=1)
    try:
        np.testing.assert_array_equal(restored.state(), original_state)
        assert restored.classical_value(restored.creg("c")) == original_value
        assert restored.outcomes.seed == 7
    finally:
        restored.close()


def test_restored_session_equals_fork_under_identical_edits(tmp_path):
    """A restored session is a fork taken at checkpoint time: identical
    edits (including new measurements drawing fresh keyed randomness)
    produce identical trajectories."""
    path = str(tmp_path / "forkeq.qtckpt")
    session = QTask(3, block_size=4, num_workers=1, seed=21)
    c = session.add_classical_register("c", 2)
    net1 = session.insert_net()
    for q in range(3):
        session.insert_gate("h", net1, q)
    net2 = session.insert_net()
    session.measure(net2, 0, c[0])
    session.update_state()
    session.checkpoint(path)
    fork = session.fork()
    restored = QTask.restore(path, num_workers=1)
    try:
        for twin in (fork, restored):
            net = twin.insert_net()
            twin.measure(net, 1, twin.creg("c")[1])
            net = twin.insert_net()
            twin.c_if("x", net, 2, condition=(twin.creg("c"), 3))
            twin.update_state()
        np.testing.assert_array_equal(restored.state(), fork.state())
        assert restored.classical_value(restored.creg("c")) == fork.classical_value(
            fork.creg("c")
        )
    finally:
        restored.close()
        fork.close()
        session.close()


def test_restore_kernel_backend_override(tmp_path):
    """Execution resources are not durable state: the restored session can
    run on a different backend and still computes the same states."""
    num_qubits = 5
    rng = random.Random(33)
    levels = random_levels(rng, num_qubits, 4)
    path = str(tmp_path / "session.qtckpt")
    with QTask(num_qubits, block_size=4, num_workers=1, kernel_backend="numpy") as s:
        _fill_session(s, levels)
        s.update_state()
        s.checkpoint(path)

    restored = QTask.restore(path, num_workers=1, kernel_backend="legacy")
    try:
        assert restored.statistics()["backend"] == "legacy"
        net = restored.insert_net()
        restored.insert_gate("cx", net, 0, num_qubits - 1)
        restored.update_state()
        expected = reference_state(num_qubits, circuit_levels(restored.circuit))
        assert_states_close(restored.state(), expected, atol=1e-10)
    finally:
        restored.close()


def test_direct_simulator_round_trip(tmp_path):
    """The core API works without the facade."""
    num_qubits = 5
    rng = random.Random(34)
    levels = random_levels(rng, num_qubits, 4)
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    sim = QTaskSimulator(circuit, block_size=4, num_workers=1)
    path = str(tmp_path / "sim.qtckpt")
    try:
        sim.update_state()
        save_checkpoint(sim, path)
        expected = sim.state().copy()
    finally:
        sim.close()
    restored = restore_simulator(path, num_workers=1)
    try:
        np.testing.assert_array_equal(restored.state(), expected)
    finally:
        restored.close()


# ---------------------------------------------------------------------------
# durability: atomic writes, loud rejection of damaged files
# ---------------------------------------------------------------------------


def _checkpointed_session(tmp_path):
    rng = random.Random(35)
    levels = random_levels(rng, 5, 4)
    path = str(tmp_path / "victim.qtckpt")
    with QTask(5, block_size=4, num_workers=1) as session:
        _fill_session(session, levels)
        session.update_state()
        session.checkpoint(path)
        state = session.state().copy()
    return path, state


def test_save_leaves_no_temp_files(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert not leftovers
    assert os.path.exists(path)


def test_checkpoint_overwrite_is_atomic(tmp_path):
    """Re-checkpointing onto an existing file replaces it wholesale."""
    path, _ = _checkpointed_session(tmp_path)
    first_size = os.path.getsize(path)
    restored = QTask.restore(path, num_workers=1)
    try:
        net = restored.insert_net()
        restored.insert_gate("h", net, 0)
        restored.update_state()
        restored.checkpoint(path)
        state = restored.state().copy()
    finally:
        restored.close()
    assert os.path.getsize(path) >= first_size
    second = QTask.restore(path, num_workers=1)
    try:
        np.testing.assert_array_equal(second.state(), state)
    finally:
        second.close()


def test_missing_file_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        QTask.restore(str(tmp_path / "nope.qtckpt"))


def test_bad_magic_raises_checkpoint_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    data = bytearray(open(path, "rb").read())
    data[:4] = b"XXXX"
    open(path, "wb").write(bytes(data))
    with pytest.raises(CheckpointError, match="magic|not a qTask checkpoint"):
        QTask.restore(path)


def test_flipped_payload_byte_raises_checksum_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    data = bytearray(open(path, "rb").read())
    data[-3] ^= 0xFF  # corrupt an amplitude byte
    open(path, "wb").write(bytes(data))
    with pytest.raises(CheckpointError, match="checksum"):
        QTask.restore(path)


def test_truncated_payload_raises_checkpoint_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    data = open(path, "rb").read()
    open(path, "wb").write(data[: len(data) - 16])
    with pytest.raises(CheckpointError):
        QTask.restore(path)


def test_truncated_header_raises_checkpoint_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    open(path, "wb").write(open(path, "rb").read()[:10])
    with pytest.raises(CheckpointError):
        QTask.restore(path)


def test_unknown_version_raises_checkpoint_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    raw = open(path, "rb").read()
    offset = len(CHECKPOINT_MAGIC)
    (header_len,) = struct.unpack_from("<Q", raw, offset)
    header = json.loads(raw[offset + 8 : offset + 8 + header_len].decode("utf-8"))
    header["version"] = 999
    new_header = json.dumps(header).encode("utf-8")
    patched = (
        raw[:offset]
        + struct.pack("<Q", len(new_header))
        + new_header
        + raw[offset + 8 + header_len :]
    )
    open(path, "wb").write(patched)
    with pytest.raises(CheckpointError, match="version"):
        QTask.restore(path)


def test_garbage_json_header_raises_checkpoint_error(tmp_path):
    path, _ = _checkpointed_session(tmp_path)
    raw = open(path, "rb").read()
    offset = len(CHECKPOINT_MAGIC)
    (header_len,) = struct.unpack_from("<Q", raw, offset)
    patched = (
        raw[: offset + 8]
        + b"\xff" * header_len
        + raw[offset + 8 + header_len :]
    )
    open(path, "wb").write(patched)
    with pytest.raises(CheckpointError):
        QTask.restore(path)
