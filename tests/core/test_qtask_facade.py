"""Tests for the QTask facade (the paper's Listing-1 programming model)."""

import io

import numpy as np
import pytest

from repro import QTask
from repro.core.exceptions import NetDependencyError
from repro.core.gates import Gate

from ..conftest import assert_states_close, circuit_levels, reference_state


def test_listing1_workflow_end_to_end():
    """Reproduce Listing 1: build Figure 2, simulate, modify, re-simulate."""
    ckt = QTask(5, block_size=4, num_workers=1)
    q4, q3, q2, q1, q0 = ckt.qubits()
    net1 = ckt.insert_net()
    net2 = ckt.insert_net(net1)
    net3 = ckt.insert_net(net2)
    net4 = ckt.insert_net(net3)
    net5 = ckt.insert_net(net4)
    for q in (q4, q3, q2, q1, q0):
        ckt.insert_gate("h", net1, q)
    G6 = ckt.insert_gate("cnot", net2, q3, q4)
    G7 = ckt.insert_gate("cnot", net3, q1, q4)
    G8 = ckt.insert_gate("cnot", net4, q2, q3)
    G9 = ckt.insert_gate("cnot", net5, q0, q2)

    dot = ckt.dump_graph()
    assert "digraph" in dot

    report = ckt.update_state()          # full update
    assert report.affected_partitions == report.total_partitions

    levels = [[Gate("h", (q,)) for q in (4, 3, 2, 1, 0)],
              [Gate("cx", (3, 4))], [Gate("cx", (1, 4))],
              [Gate("cx", (2, 3))], [Gate("cx", (0, 2))]]
    assert_states_close(ckt.state(), reference_state(5, levels))

    # modify the circuit: remove G8, insert G10, incremental update
    ckt.remove_gate(G8)
    G10 = ckt.insert_gate("cnot", net4, q1, q2)
    report2 = ckt.update_state()         # incremental update
    assert report2.affected_partitions < report.total_partitions

    levels2 = [[Gate("h", (q,)) for q in (4, 3, 2, 1, 0)],
               [Gate("cx", (3, 4))], [Gate("cx", (1, 4))],
               [Gate("cx", (1, 2))], [Gate("cx", (0, 2))]]
    assert_states_close(ckt.state(), reference_state(5, levels2))
    ckt.close()


def test_facade_throws_on_net_dependency():
    ckt = QTask(3, num_workers=1)
    net = ckt.insert_net()
    ckt.insert_gate("cx", net, 0, 1)
    with pytest.raises(NetDependencyError):
        ckt.insert_gate("h", net, 0)
    ckt.close()


def test_facade_structural_queries():
    with QTask(4, block_size=2, num_workers=1) as ckt:
        assert ckt.num_qubits == 4
        assert ckt.qubits() == (3, 2, 1, 0)
        net = ckt.insert_net()
        ckt.insert_gate("h", net, 0)
        assert ckt.num_gates == 1
        assert ckt.num_nets == 1
        assert len(ckt.nets()) == 1
        assert "QTask" in repr(ckt)


def test_facade_queries_after_update():
    with QTask(2, block_size=2, num_workers=1) as ckt:
        net = ckt.insert_net()
        ckt.insert_gate("h", net, 1)
        net2 = ckt.insert_net()
        ckt.insert_gate("cx", net2, 1, 0)
        ckt.update_state()
        assert abs(ckt.probability(0b00) - 0.5) < 1e-9
        assert abs(ckt.probability(0b11) - 0.5) < 1e-9
        assert abs(ckt.amplitude(0b01)) < 1e-12
        probs = ckt.probabilities()
        assert abs(probs.sum() - 1) < 1e-9
        assert ckt.memory_report().allocated_bytes > 0
        assert ckt.statistics()["num_updates"] == 1


def test_facade_dump_graph_to_stream():
    with QTask(2, block_size=2, num_workers=1) as ckt:
        net = ckt.insert_net()
        ckt.insert_gate("x", net, 0)
        buf = io.StringIO()
        text = ckt.dump_graph(buf)
        assert buf.getvalue() == text
        assert "digraph" in text


def test_facade_remove_net():
    with QTask(3, block_size=2, num_workers=1) as ckt:
        net1 = ckt.insert_net()
        net2 = ckt.insert_net()
        ckt.insert_gate("h", net1, 0)
        ckt.insert_gate("x", net2, 1)
        ckt.update_state()
        ckt.remove_net(net2)
        ckt.update_state()
        levels = [[Gate("h", (0,))]]
        assert_states_close(ckt.state(), reference_state(3, levels))


def test_facade_gate_params_passthrough():
    with QTask(2, block_size=2, num_workers=1) as ckt:
        net = ckt.insert_net()
        ckt.insert_gate("rx", net, 0, params=(np.pi,))
        ckt.update_state()
        # RX(pi)|0> = -i|1>
        assert abs(abs(ckt.amplitude(1)) - 1.0) < 1e-9
