"""Unit tests for the storage transport seam (``repro.core.transport``).

Covers the wire codec, the local transport's identity semantics (what the
``BlockStore`` hot-path short-circuit assumes), transport selection, the
sharded transport's placement/accounting/publish-batching, and the two
recovery layers: shard respawn after a SIGKILL and the store circuit
breaker falling back to the local transport under a scripted fault storm.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import faults
from repro.core.circuit import Circuit
from repro.core.cow import BlockStore, MemoryReport
from repro.core.faults import FaultPlan
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.core.transport import (
    LOCAL_TRANSPORT,
    LocalTransport,
    ShardedTransport,
    StorageTransport,
    TransportFailure,
    decode_block,
    encode_block,
    make_transport,
)

from ..conftest import circuit_levels, reference_state

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="sharded transport needs fork"
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Restore whatever plan (chaos-mode or none) surrounded each test."""
    previous = faults.install(None)
    yield
    faults.install(previous)


# ---------------------------------------------------------------------------
# wire codec (shared with the checkpoint block format)
# ---------------------------------------------------------------------------


class TestCodec:
    def test_roundtrip(self):
        arr = np.arange(8, dtype=np.complex128) * (1 + 2j)
        raw, crc = encode_block(arr)
        out = decode_block(raw, crc, 8)
        np.testing.assert_array_equal(out, arr)

    def test_decoded_view_is_read_only(self):
        raw, crc = encode_block(np.ones(4, dtype=np.complex128))
        out = decode_block(raw, crc)
        assert not out.flags.writeable

    def test_crc_mismatch_raises(self):
        raw, crc = encode_block(np.ones(4, dtype=np.complex128))
        with pytest.raises(TransportFailure):
            decode_block(raw, crc ^ 1)

    def test_corrupt_payload_raises(self):
        raw, crc = encode_block(np.ones(4, dtype=np.complex128))
        bad = bytes([raw[0] ^ 0xFF]) + raw[1:]
        with pytest.raises(TransportFailure):
            decode_block(bad, crc)

    def test_length_mismatch_raises(self):
        raw, crc = encode_block(np.ones(4, dtype=np.complex128))
        with pytest.raises(TransportFailure):
            decode_block(raw, crc, expect_len=8)


# ---------------------------------------------------------------------------
# local transport: identity semantics
# ---------------------------------------------------------------------------


class TestLocalTransport:
    def test_write_range_returns_the_arrays_themselves(self):
        t = LocalTransport()
        arrays = [np.ones(4, dtype=np.complex128) for _ in range(3)]
        handles = t.write_range(None, 0, arrays)
        assert all(h is a for h, a in zip(handles, arrays))

    def test_read_range_returns_stored_arrays(self):
        store = BlockStore(16, 4)
        arr = np.arange(4, dtype=np.complex128)
        store.write_block(1, arr, copy=False)
        (got,) = LOCAL_TRANSPORT.read_range(store, 1, 1)
        assert got is store._blocks[1]

    def test_seal_marks_blocks_read_only(self):
        store = BlockStore(16, 4)
        store.write_block(0, np.ones(4, dtype=np.complex128))
        LOCAL_TRANSPORT.seal(store, (0,))
        assert not store._blocks[0].flags.writeable

    def test_local_store_is_not_remote_backed(self):
        assert not BlockStore(16, 4).is_remote_backed


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


class TestMakeTransport:
    def test_local(self):
        transport, fell_back = make_transport("local")
        assert transport is LOCAL_TRANSPORT
        assert not fell_back

    def test_instance_passes_through(self):
        t = LocalTransport()
        transport, fell_back = make_transport(t)
        assert transport is t
        assert not fell_back

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_transport("s3")

    def test_env_drives_default(self, monkeypatch):
        monkeypatch.setenv("QTASK_STORE_TRANSPORT", "local")
        transport, _ = make_transport(None)
        assert transport.name == "local"

    @needs_fork
    def test_sharded(self):
        transport, fell_back = make_transport("sharded")
        assert isinstance(transport, ShardedTransport)
        assert transport.is_remote
        assert not fell_back

    @needs_fork
    def test_shard_count_env(self, monkeypatch):
        monkeypatch.setenv("QTASK_STORE_SHARDS", "3")
        assert ShardedTransport().num_shards == 3


# ---------------------------------------------------------------------------
# sharded transport: placement, store round-trips, accounting
# ---------------------------------------------------------------------------


@needs_fork
class TestShardedStore:
    def _store(self, dim=64, block_size=4, shards=2):
        return BlockStore(dim, block_size, transport=ShardedTransport(shards))

    def test_placement_is_contiguous_and_covers_all_shards(self):
        t = ShardedTransport(3)
        store = BlockStore(64, 4)  # 16 blocks
        owners = [t._shard_of(store, b) for b in range(store.n_blocks)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2}

    def test_roundtrip_and_remote_handles(self):
        store = self._store()
        rng = np.random.default_rng(7)
        expect = {}
        for b in (0, 3, 9, 15):
            arr = rng.normal(size=4) + 1j * rng.normal(size=4)
            store.write_block(b, arr)
            expect[b] = arr
        assert store.is_remote_backed
        # dict entries are opaque handles, payloads live shard-side
        assert not any(
            isinstance(h, np.ndarray) for h in store._blocks.values()
        )
        for b, arr in expect.items():
            np.testing.assert_array_equal(store.get_block(b), arr)
        np.testing.assert_array_equal(
            np.concatenate(store.get_block_many(0, 0)), expect[0]
        )

    def test_counters_accumulate(self):
        t = ShardedTransport(2)
        store = BlockStore(64, 4, transport=t)
        shipped0, reads0 = t.bytes_shipped, t.remote_reads
        store.write_block(2, np.ones(4, dtype=np.complex128))
        assert t.bytes_shipped == shipped0 + 4 * 16
        store._read_cache.clear()
        store.get_block(2)
        assert t.remote_reads == reads0 + 1

    def test_share_accounting_matches_local_totals(self):
        t = ShardedTransport(2)
        # shard processes are module-shared: start empty so the report
        # reflects only this test's payloads
        t._runtime.ensure_started()
        t.purge()
        a = BlockStore(64, 4, transport=t)
        rng = np.random.default_rng(3)
        for b in range(16):
            a.write_block(b, rng.normal(size=4) + 0j)
        b_store = BlockStore(64, 4, transport=t)
        adopted = b_store.share_from(a)
        assert adopted == 16
        assert b_store.shared_bytes() == a.allocated_bytes()
        report = MemoryReport.from_stores([a, b_store], transport=t)
        assert report.transport == "sharded"
        assert len(report.shards) == 2
        # shard-side owned bytes sum to the one real copy; the share shows
        # up as shard-side shared bytes, mirroring the parent-side split
        assert (
            sum(s["owned_bytes"] for s in report.shards) == a.allocated_bytes()
        )
        assert (
            sum(s["shared_bytes"] for s in report.shards)
            == b_store.shared_bytes()
        )
        a.release_remote()
        b_store.release_remote()

    def test_release_frees_shard_payloads(self):
        t = ShardedTransport(2)
        store = BlockStore(64, 4, transport=t)
        for b in range(16):
            store.write_block(b, np.ones(4, dtype=np.complex128))
        held = sum(s["blocks"] for s in t.shard_report())
        store.release_remote()
        assert sum(s["blocks"] for s in t.shard_report()) <= held - 16


@needs_fork
class TestPublishBatch:
    def test_batch_defers_the_ship_and_reads_see_pending(self):
        t = ShardedTransport(2)
        store = BlockStore(64, 4, transport=t)
        arr = np.arange(4, dtype=np.complex128)
        shipped0 = t.bytes_shipped
        with store.publish_batch():
            store.write_block(5, arr)
            # nothing crossed the wire yet; the read is served locally
            assert t.bytes_shipped == shipped0
            np.testing.assert_array_equal(store.get_block(5), arr)
            assert isinstance(store._blocks[5], np.ndarray)
        # the batch close shipped it and swapped in the remote handle
        assert t.bytes_shipped == shipped0 + arr.nbytes
        assert not isinstance(store._blocks[5], np.ndarray)
        np.testing.assert_array_equal(store.get_block(5), arr)
        store.release_remote()

    def test_contiguous_runs_ship_together(self):
        t = ShardedTransport(1)
        store = BlockStore(64, 4, transport=t)
        reads0 = t.remote_reads
        with store.publish_batch():
            for b in (3, 4, 5, 9):
                store.write_block(b, np.full(4, b, dtype=np.complex128))
        store._read_cache.clear()
        for b in (3, 4, 5, 9):
            np.testing.assert_array_equal(
                store.get_block(b), np.full(4, b, dtype=np.complex128)
            )
        assert t.remote_reads > reads0
        store.release_remote()

    def test_nested_batches_flush_once_at_the_outermost_exit(self):
        t = ShardedTransport(2)
        store = BlockStore(64, 4, transport=t)
        shipped0 = t.bytes_shipped
        with store.publish_batch():
            with store.publish_batch():
                store.write_block(0, np.ones(4, dtype=np.complex128))
            assert t.bytes_shipped == shipped0
        assert t.bytes_shipped > shipped0
        store.release_remote()

    def test_batch_is_a_no_op_on_local_stores(self):
        store = BlockStore(16, 4)
        with store.publish_batch():
            store.write_block(0, np.ones(4, dtype=np.complex128))
        assert isinstance(store._blocks[0], np.ndarray)


# ---------------------------------------------------------------------------
# recovery: shard death and the store circuit breaker
# ---------------------------------------------------------------------------


def _build_sharded_sim(num_qubits=5, **knobs):
    circuit = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    levels.append([Gate("cx", (q, q + 1)) for q in range(0, num_qubits - 1, 2)])
    levels.append([Gate("rz", (q,), (0.2 + 0.1 * q,)) for q in range(num_qubits)])
    circuit.from_levels(levels)
    knobs.setdefault("block_size", 4)
    knobs.setdefault("num_workers", 2)
    return QTaskSimulator(circuit, store_transport="sharded", **knobs)


@needs_fork
class TestShardRecovery:
    def test_sigkilled_shard_respawns_and_update_completes(self):
        sim = _build_sharded_sim()
        try:
            sim.update_state()
            victim = sim._store_transport.shard_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while sim._store_transport.healthy():
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("killed shard still reported alive")
                time.sleep(0.01)
            net = sim.circuit.insert_net()
            sim.circuit.insert_gate("x", net, 0)
            sim.update_state()
            stats = sim.statistics()
            assert stats["store_transport"] == "sharded"
            assert stats["store_shard_restarts"] >= 1
            assert stats["store_transitions"] == 0
            expected = reference_state(
                sim.circuit.num_qubits, circuit_levels(sim.circuit)
            )
            np.testing.assert_allclose(sim.state(), expected, atol=1e-10)
        finally:
            sim.close()

    def test_scripted_fault_storm_trips_breaker_to_local(self):
        # 5 consecutive store.shard faults make one TransportFailure;
        # 10 span two failures, which is the breaker threshold: the second
        # recovery swaps the session onto the local transport.  One worker
        # keeps the site-evaluation order (and so the failure count)
        # deterministic -- concurrent threads would split the fault run.
        sim = _build_sharded_sim(num_workers=1)
        try:
            faults.install(
                FaultPlan(script=[("store.shard", i) for i in range(1, 11)])
            )
            sim.update_state()
            faults.uninstall()
            stats = sim.statistics()
            assert stats["store_transport"] == "local"
            assert stats["store_transitions"] == 1
            transitions = sim.telemetry.events.events(kind="breaker.transition")
            assert transitions
            assert transitions[-1].fields["from"] == "sharded"
            assert transitions[-1].fields["to"] == "local"
            assert sim.telemetry.events.events(kind="store.recovery")
            expected = reference_state(
                sim.circuit.num_qubits, circuit_levels(sim.circuit)
            )
            np.testing.assert_allclose(sim.state(), expected, atol=1e-10)
        finally:
            sim.close()

    def test_single_failure_respawns_and_stays_sharded(self):
        sim = _build_sharded_sim(num_workers=1)
        try:
            faults.install(
                FaultPlan(script=[("store.shard", i) for i in range(1, 6)])
            )
            sim.update_state()
            faults.uninstall()
            stats = sim.statistics()
            assert stats["store_transport"] == "sharded"
            assert stats["store_transitions"] == 0
            assert sim.telemetry.events.events(kind="store.recovery")
            expected = reference_state(
                sim.circuit.num_qubits, circuit_levels(sim.circuit)
            )
            np.testing.assert_allclose(sim.state(), expected, atol=1e-10)
        finally:
            sim.close()

    def test_sharded_unavailable_falls_back_cleanly(self, monkeypatch):
        # simulate a platform without fork: selection degrades to local and
        # records the transition, instead of crashing at first write
        monkeypatch.delattr(os, "fork")
        transport, fell_back = make_transport("sharded")
        assert transport is LOCAL_TRANSPORT
        assert fell_back


class TestTransportInterfaceDefaults:
    def test_abstract_bytes_owned_uses_store_accounting(self):
        store = BlockStore(16, 4)
        store.write_block(0, np.ones(4, dtype=np.complex128))
        assert StorageTransport().bytes_owned(store) == store.allocated_bytes()

    def test_abstract_write_read_unimplemented(self):
        t = StorageTransport()
        with pytest.raises(NotImplementedError):
            t.write_range(None, 0, [])
        with pytest.raises(NotImplementedError):
            t.read_range(None, 0, 0)
