"""Unit tests for the pluggable kernel backends and their selection."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.kernels import (
    HAVE_NUMBA,
    BackendUnavailable,
    KernelBackend,
    NumbaBackend,
    NumpyBatchBackend,
    ProcessPoolBackend,
    available_backends,
    iter_table_runs,
    make_backend,
)
from repro.core.simulator import QTaskSimulator


def _simulator(levels, num_qubits=6, **kwargs):
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    kwargs.setdefault("block_size", 4)
    return QTaskSimulator(circuit, **kwargs)


def _mixed_levels(num_qubits=6):
    """Superposition + diagonal + monomial + entangling: every run kind."""
    levels = [
        [Gate("h", (q,)) for q in range(num_qubits)],
        [Gate("rz", (q,), (0.3 + 0.1 * q,)) for q in range(num_qubits)],
        [Gate("x", (0,)), Gate("y", (1,))],
    ]
    for q in range(num_qubits - 1):
        levels.append([Gate("cx", (q, q + 1))])
    return levels


# ---------------------------------------------------------------------------
# selection: make_backend / available_backends / env knob
# ---------------------------------------------------------------------------


class TestMakeBackend:
    def test_numpy(self):
        backend, fell_back = make_backend("numpy")
        assert isinstance(backend, NumpyBatchBackend)
        assert not fell_back

    def test_legacy_is_none(self):
        backend, fell_back = make_backend("legacy")
        assert backend is None
        assert not fell_back

    def test_auto_never_falls_back(self):
        backend, fell_back = make_backend("auto")
        assert backend is not None
        assert not fell_back
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert backend.name == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_backend("cuda")

    def test_numba_without_numba_falls_back_to_numpy(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed: no fallback to observe")
        backend, fell_back = make_backend("numba")
        assert isinstance(backend, NumpyBatchBackend)
        assert fell_back

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv("QTASK_KERNEL_BACKEND", "legacy")
        sim = _simulator([[Gate("h", (0,))]])
        assert sim.kernel_backend == "legacy"
        assert sim._backend is None
        monkeypatch.setenv("QTASK_KERNEL_BACKEND", "numpy")
        sim2 = _simulator([[Gate("h", (0,))]])
        assert sim2._backend is not None
        assert sim2._backend.name == "numpy"

    def test_explicit_knob_beats_env(self, monkeypatch):
        monkeypatch.setenv("QTASK_KERNEL_BACKEND", "numpy")
        sim = _simulator([[Gate("h", (0,))]], kernel_backend="legacy")
        assert sim._backend is None

    def test_available_backends_contents(self):
        names = available_backends()
        assert "numpy" in names
        assert "legacy" in names
        assert ("numba" in names) == HAVE_NUMBA
        assert ("process" in names) == hasattr(os, "fork")


# ---------------------------------------------------------------------------
# iter_table_runs
# ---------------------------------------------------------------------------


def test_iter_table_runs_roundtrip():
    from repro.core.exec_plan import RUN_ACTION, RunSpec, RunTable

    op = object()
    runs = [RunSpec(RUN_ACTION, 4 * i, 4 * i + 3, (0,), op) for i in range(3)]
    table = RunTable.from_runs(runs)
    assert list(iter_table_runs(table)) == runs


# ---------------------------------------------------------------------------
# numba backend (interpreted kernels run everywhere; jit needs numba)
# ---------------------------------------------------------------------------


class TestNumbaBackend:
    def test_jit_unavailable_raises(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed: jit construction succeeds")
        with pytest.raises(BackendUnavailable):
            NumbaBackend()

    def test_interpreted_kernels_match_legacy(self):
        sim = _simulator(_mixed_levels(), kernel_backend="legacy")
        sim._backend = NumbaBackend(jit=False)
        sim.update_state()
        ref = _simulator(_mixed_levels(), kernel_backend="legacy")
        ref.update_state()
        np.testing.assert_allclose(sim.state(), ref.state(), atol=1e-10)


# ---------------------------------------------------------------------------
# process-pool backend
# ---------------------------------------------------------------------------


needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process backend needs the fork start method"
)


@needs_fork
class TestProcessPoolBackend:
    def test_forced_shipping_matches_legacy(self):
        # local store transport: remote-backed stores deliberately bypass
        # SharedMemory shipping, and shipping is what this test forces
        sim = _simulator(
            _mixed_levels(), kernel_backend="legacy", store_transport="local"
        )
        sim._backend = ProcessPoolBackend(num_workers=2, min_ship_amps=0)
        sim.update_state()
        assert sim._backend.shipped_runs > 0
        ref = _simulator(_mixed_levels(), kernel_backend="legacy")
        ref.update_state()
        np.testing.assert_allclose(sim.state(), ref.state(), atol=1e-10)

    def test_small_tables_stay_in_parent(self):
        sim = _simulator(_mixed_levels(), kernel_backend="legacy")
        backend = ProcessPoolBackend(num_workers=2)  # default threshold
        sim._backend = backend
        sim.update_state()
        # every table here is far below min_ship_amps: nothing crosses
        assert backend.shipped_runs == 0

    def test_single_worker_never_ships(self):
        sim = _simulator(_mixed_levels(), kernel_backend="legacy")
        backend = ProcessPoolBackend(num_workers=1, min_ship_amps=0)
        sim._backend = backend
        sim.update_state()
        assert backend.shipped_runs == 0

    def test_worker_count_env(self, monkeypatch):
        monkeypatch.setenv("QTASK_PROCESS_WORKERS", "3")
        assert ProcessPoolBackend().num_workers == 3


# ---------------------------------------------------------------------------
# failure-safe execution: a crashing backend degrades, never corrupts
# ---------------------------------------------------------------------------


class _ExplodingBackend(KernelBackend):
    name = "exploding"
    failure_safe = True

    def execute_plan(self, reader, store, table):
        raise RuntimeError("boom")


class _FragileBackend(KernelBackend):
    name = "fragile"
    failure_safe = False

    def execute_plan(self, reader, store, table):
        raise RuntimeError("boom")


class TestFailureSafety:
    def test_failure_safe_backend_falls_back_per_run(self):
        sim = _simulator(_mixed_levels(), kernel_backend="numpy")
        sim._backend = _ExplodingBackend()
        sim.update_state()
        ref = _simulator(_mixed_levels(), kernel_backend="legacy")
        ref.update_state()
        np.testing.assert_allclose(sim.state(), ref.state(), atol=1e-10)
        assert sim.plan_report().backend_fallbacks > 0

    def test_non_failure_safe_backend_propagates(self):
        sim = _simulator(_mixed_levels(), kernel_backend="numpy")
        sim._backend = _FragileBackend()
        with pytest.raises(RuntimeError, match="boom"):
            sim.update_state()


# ---------------------------------------------------------------------------
# plan statistics surface
# ---------------------------------------------------------------------------


class TestPlanStatistics:
    def test_counters_accumulate_across_updates(self):
        sim = _simulator(_mixed_levels(), kernel_backend="numpy")
        sim.update_state()
        first = sim.plan_report()
        assert first.updates_planned == 1
        assert first.plans_built > 0
        assert first.runs_batched >= first.plans_built
        handle = sim.circuit.gates()[6]  # an rz of the second level
        sim.circuit.update_gate(handle, 1.234)
        sim.update_state()
        second = sim.plan_report()
        assert second.updates_planned == 2
        assert second.plans_built > first.plans_built

    def test_statistics_merges_plan_report(self):
        sim = _simulator(_mixed_levels(), kernel_backend="numpy")
        sim.update_state()
        stats = sim.statistics()
        for key in ("backend", "plans_built", "runs_batched", "runs_per_plan"):
            assert key in stats
        assert stats["backend"] == "numpy"

    def test_legacy_backend_reports_zero_plans(self):
        sim = _simulator(_mixed_levels(), kernel_backend="legacy")
        sim.update_state()
        report = sim.plan_report()
        assert report.backend == "legacy"
        assert report.plans_built == 0

    def test_fork_inherits_backend(self):
        sim = _simulator(_mixed_levels(), kernel_backend="numpy")
        sim.update_state()
        child = sim.fork()
        assert child._backend is sim._backend
        assert child.plan_report().updates_planned == 0
        child2 = sim.fork(kernel_backend="legacy")
        assert child2._backend is None
