"""Tests for the gate database, matrices and action classification."""

import math

import numpy as np
import pytest

from repro.core.exceptions import GateArityError, UnknownGateError
from repro.core.gates import (
    DiagonalAction,
    Gate,
    MatVecAction,
    MonomialAction,
    STANDARD_GATE_NAMES,
    classify_gate,
    classify_matrix,
    controlled_matrix,
    embed_gate_matrix,
    gate_matrix,
    get_spec,
    is_superposition_gate,
)


# ---------------------------------------------------------------------------
# Table I: the standard gate set
# ---------------------------------------------------------------------------


def test_table1_standard_gates_all_registered():
    for name in STANDARD_GATE_NAMES:
        spec = get_spec(name)
        assert spec.num_qubits in (1, 2)


@pytest.mark.parametrize("name", ["cnot", "cx"])
def test_cnot_alias(name):
    assert get_spec(name).name == "cx"


@pytest.mark.parametrize(
    "name,params",
    [
        ("id", ()), ("x", ()), ("y", ()), ("z", ()), ("h", ()), ("s", ()),
        ("sdg", ()), ("t", ()), ("tdg", ()), ("sx", ()),
        ("rx", (0.7,)), ("ry", (1.1,)), ("rz", (2.3,)), ("p", (0.9,)),
        ("u2", (0.4, 1.2)), ("u3", (0.3, 0.5, 0.7)),
        ("cx", ()), ("cy", ()), ("cz", ()), ("ch", ()), ("swap", ()),
        ("crx", (0.5,)), ("cry", (0.6,)), ("crz", (0.7,)), ("cp", (0.8,)),
        ("rzz", (0.9,)), ("rxx", (1.0,)),
        ("ccx", ()), ("ccz", ()), ("cswap", ()),
    ],
)
def test_all_gate_matrices_are_unitary(name, params):
    m = gate_matrix(name, *params)
    dim = m.shape[0]
    np.testing.assert_allclose(m @ m.conj().T, np.eye(dim), atol=1e-12)


def test_unknown_gate_raises():
    with pytest.raises(UnknownGateError):
        gate_matrix("frobnicate")


def test_wrong_parameter_count_raises():
    with pytest.raises(GateArityError):
        gate_matrix("rx")
    with pytest.raises(GateArityError):
        gate_matrix("h", 0.3)


# ---------------------------------------------------------------------------
# Matrix values for a few textbook gates
# ---------------------------------------------------------------------------


def test_hadamard_matrix_value():
    h = gate_matrix("h")
    np.testing.assert_allclose(h, np.array([[1, 1], [1, -1]]) / math.sqrt(2))


def test_x_matrix_value():
    np.testing.assert_allclose(gate_matrix("x"), [[0, 1], [1, 0]])


def test_cnot_matrix_in_local_convention():
    # local bit 0 = control, local bit 1 = target
    cx = gate_matrix("cx")
    # |c=1,t=0> (index 1) <-> |c=1,t=1> (index 3)
    assert cx[3, 1] == 1 and cx[1, 3] == 1
    assert cx[0, 0] == 1 and cx[2, 2] == 1
    assert cx[1, 1] == 0


def test_s_squared_is_z():
    s = gate_matrix("s")
    np.testing.assert_allclose(s @ s, gate_matrix("z"))


def test_t_squared_is_s():
    t = gate_matrix("t")
    np.testing.assert_allclose(t @ t, gate_matrix("s"))


def test_sdg_is_s_dagger():
    np.testing.assert_allclose(gate_matrix("sdg"), gate_matrix("s").conj().T)


def test_tdg_is_t_dagger():
    np.testing.assert_allclose(gate_matrix("tdg"), gate_matrix("t").conj().T)


def test_rz_diagonal_values():
    theta = 0.77
    rz = gate_matrix("rz", theta)
    assert rz[0, 1] == 0 and rz[1, 0] == 0
    np.testing.assert_allclose(np.angle(rz[1, 1]) - np.angle(rz[0, 0]), theta)


def test_u3_specializations():
    np.testing.assert_allclose(gate_matrix("u3", np.pi, 0, np.pi), gate_matrix("x"),
                               atol=1e-12)
    np.testing.assert_allclose(gate_matrix("u2", 0, np.pi), gate_matrix("h"), atol=1e-12)


def test_controlled_matrix_of_x_is_cx():
    np.testing.assert_allclose(controlled_matrix(gate_matrix("x")), gate_matrix("cx"))


def test_controlled_matrix_two_controls_is_ccx():
    np.testing.assert_allclose(controlled_matrix(gate_matrix("x"), 2), gate_matrix("ccx"))


def test_swap_matrix_is_permutation():
    sw = gate_matrix("swap")
    assert np.count_nonzero(sw) == 4
    np.testing.assert_allclose(sw @ sw, np.eye(4))


def test_rzz_is_diagonal():
    rzz = gate_matrix("rzz", 0.3)
    assert np.count_nonzero(rzz - np.diag(np.diag(rzz))) == 0


# ---------------------------------------------------------------------------
# Classification (the heart of §III.C)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,params,expected",
    [
        ("z", (), DiagonalAction), ("s", (), DiagonalAction), ("t", (), DiagonalAction),
        ("sdg", (), DiagonalAction), ("tdg", (), DiagonalAction),
        ("rz", (0.4,), DiagonalAction), ("p", (0.4,), DiagonalAction),
        ("cz", (), DiagonalAction), ("cp", (0.4,), DiagonalAction),
        ("rzz", (0.4,), DiagonalAction), ("ccz", (), DiagonalAction),
        ("x", (), MonomialAction), ("y", (), MonomialAction),
        ("cx", (), MonomialAction), ("cy", (), MonomialAction),
        ("swap", (), MonomialAction), ("ccx", (), MonomialAction),
        ("cswap", (), MonomialAction),
        ("h", (), MatVecAction), ("sx", (), MatVecAction),
        ("rx", (0.4,), MatVecAction), ("ry", (0.4,), MatVecAction),
        ("u2", (0.1, 0.2), MatVecAction), ("u3", (0.1, 0.2, 0.3), MatVecAction),
        ("ch", (), MatVecAction), ("rxx", (0.4,), MatVecAction),
    ],
)
def test_gate_classification(name, params, expected):
    action = classify_matrix(gate_matrix(name, *params))
    assert isinstance(action, expected)


def test_rx_pi_is_monomial_not_superposition():
    """RX(pi) does not create superposition (paper §III.C)."""
    action = classify_matrix(gate_matrix("rx", math.pi))
    assert isinstance(action, MonomialAction)


def test_rx_half_pi_is_superposition():
    action = classify_matrix(gate_matrix("rx", math.pi / 2))
    assert isinstance(action, MatVecAction)


def test_ry_pi_is_monomial():
    assert isinstance(classify_matrix(gate_matrix("ry", math.pi)), MonomialAction)


def test_rz_any_angle_is_diagonal():
    for theta in (0.0, 0.1, math.pi, 5.0):
        assert isinstance(classify_matrix(gate_matrix("rz", theta)), DiagonalAction)


def test_identity_classification_has_no_touched_locals():
    action = classify_matrix(gate_matrix("id"))
    assert isinstance(action, DiagonalAction)
    assert action.touched_locals() == ()


def test_diagonal_touched_locals_z():
    action = classify_matrix(gate_matrix("z"))
    assert action.touched_locals() == (1,)


def test_diagonal_touched_locals_cz():
    action = classify_matrix(gate_matrix("cz"))
    assert action.touched_locals() == (3,)


def test_monomial_orbits_of_x():
    action = classify_matrix(gate_matrix("x"))
    assert action.orbits() == ((0, 1),)


def test_monomial_orbits_of_cnot():
    action = classify_matrix(gate_matrix("cx"))
    # locals 1 (c=1,t=0) and 3 (c=1,t=1) swap
    assert action.orbits() == ((1, 3),)


def test_monomial_orbits_of_swap():
    action = classify_matrix(gate_matrix("swap"))
    assert action.orbits() == ((1, 2),)


def test_classify_rejects_non_square():
    with pytest.raises(ValueError):
        classify_matrix(np.ones((2, 3)))


def test_classify_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        classify_matrix(np.eye(3))


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------


def test_gate_instance_normalizes_alias():
    g = Gate("cnot", (0, 1))
    assert g.name == "cx"


def test_gate_wrong_arity_raises():
    with pytest.raises(GateArityError):
        Gate("cx", (0,))
    with pytest.raises(GateArityError):
        Gate("h", (0, 1))


def test_gate_duplicate_qubits_raise():
    with pytest.raises(GateArityError):
        Gate("cx", (2, 2))


def test_gate_wrong_params_raise():
    with pytest.raises(GateArityError):
        Gate("rx", (0,))


def test_is_superposition_gate():
    assert is_superposition_gate(Gate("h", (0,)))
    assert not is_superposition_gate(Gate("cx", (0, 1)))
    assert not is_superposition_gate(Gate("rz", (0,), (0.3,)))


def test_classify_gate_matches_matrix_classification():
    g = Gate("swap", (1, 3))
    assert isinstance(classify_gate(g), MonomialAction)


# ---------------------------------------------------------------------------
# embed_gate_matrix (the test oracle itself gets sanity checks)
# ---------------------------------------------------------------------------


def test_embed_single_qubit_matches_kron():
    g = Gate("h", (0,))
    expected = np.kron(np.eye(2), gate_matrix("h"))  # qubit 0 = least significant
    np.testing.assert_allclose(embed_gate_matrix(g, 2), expected)


def test_embed_single_qubit_high_position():
    g = Gate("x", (1,))
    expected = np.kron(gate_matrix("x"), np.eye(2))
    np.testing.assert_allclose(embed_gate_matrix(g, 2), expected)


def test_embed_cx_action_on_basis_states():
    g = Gate("cx", (0, 1))  # control q0, target q1
    m = embed_gate_matrix(g, 2)
    # |01> (q0=1, q1=0) -> |11>
    psi = np.zeros(4); psi[0b01] = 1
    out = m @ psi
    assert abs(out[0b11] - 1) < 1e-12


def test_embed_is_unitary_for_three_qubit_gate():
    g = Gate("ccx", (2, 0, 4))
    m = embed_gate_matrix(g, 5)
    np.testing.assert_allclose(m @ m.conj().T, np.eye(32), atol=1e-12)
