"""Tests for the partition graph: connections, modifiers, frontiers (§III.D/E)."""

import io

import pytest

from repro.core.blocks import BlockRange
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.graph import PartitionGraph
from repro.core.simulator import QTaskSimulator
from repro.core.stage import MatVecStage, UnitaryStage


def build_paper_simulator(block=4):
    """The Figure-2 circuit on 5 qubits with block size 4."""
    ckt = Circuit(5)
    sim = QTaskSimulator(ckt, block_size=block, num_workers=1)
    nets = [ckt.insert_net() for _ in range(5)]
    handles = {}
    for q in (4, 3, 2, 1, 0):
        ckt.insert_gate("h", nets[0], q)
    # Gate arguments are (control, target); the paper's G6 flips q3 when q4=1.
    handles["G6"] = ckt.insert_gate("cx", nets[1], 4, 3)
    handles["G7"] = ckt.insert_gate("cx", nets[2], 4, 1)
    handles["G8"] = ckt.insert_gate("cx", nets[3], 3, 2)
    handles["G9"] = ckt.insert_gate("cx", nets[4], 2, 0)
    return ckt, sim, nets, handles


def node_ranges(graph, stage):
    return sorted(
        (n.block_range.first, n.block_range.last) for n in graph.partition_nodes(stage)
    )


def stage_of(sim, handle):
    return sim._gate_stage[handle.uid]


# ---------------------------------------------------------------------------
# graph construction on the paper example (Figure 4 / Figure 12)
# ---------------------------------------------------------------------------


def test_paper_graph_node_counts():
    ckt, sim, nets, handles = build_paper_simulator()
    graph = sim.graph
    # 8 MxV partitions + 1 sync + 1 (G6) + 2 (G7) + 2 (G8) + 2 (G9) = 16 nodes
    assert len(graph.all_nodes()) == 16
    stats = graph.stats()
    assert stats.num_stages == 5
    assert stats.num_frontiers > 0   # nothing simulated yet


def test_paper_graph_partition_ranges():
    ckt, sim, nets, handles = build_paper_simulator()
    graph = sim.graph
    assert node_ranges(graph, stage_of(sim, handles["G6"])) == [(4, 7)]
    assert node_ranges(graph, stage_of(sim, handles["G7"])) == [(4, 5), (6, 7)]
    assert node_ranges(graph, stage_of(sim, handles["G8"])) == [(2, 3), (6, 7)]
    assert node_ranges(graph, stage_of(sim, handles["G9"])) == [(1, 3), (5, 7)]


def test_paper_graph_sync_precedes_all_matvec_partitions():
    ckt, sim, nets, handles = build_paper_simulator()
    graph = sim.graph
    h_stage = graph.stages[0]
    assert isinstance(h_stage, MatVecStage)
    sync = graph.sync_node(h_stage)
    assert sync is not None
    partitions = graph.partition_nodes(h_stage)
    assert len(partitions) == 8
    for p in partitions:
        assert sync in p.preds


def test_paper_graph_g6_depends_on_upper_half_mxv_partitions():
    ckt, sim, nets, handles = build_paper_simulator()
    graph = sim.graph
    g6 = graph.partition_nodes(stage_of(sim, handles["G6"]))[0]
    pred_ranges = sorted(p.block_range.first for p in g6.preds)
    # G6 covers blocks 4..7, whose closest writers are MxV4..MxV7
    assert pred_ranges == [4, 5, 6, 7]


def test_paper_graph_g8_first_partition_successor_of_g6():
    ckt, sim, nets, handles = build_paper_simulator()
    graph = sim.graph
    g6 = graph.partition_nodes(stage_of(sim, handles["G6"]))[0]
    g8_parts = graph.partition_nodes(stage_of(sim, handles["G8"]))
    # the second G8 partition [6,7] overlaps G6's [4,7]... its closest writer
    # could be G7's [6,7]; the first G8 partition [2,3] must read MxV blocks
    g8_low = min(g8_parts, key=lambda p: p.block_range.first)
    assert all(pred.stage is graph.stages[0] for pred in g8_low.preds)


def test_paper_graph_edges_always_point_forward():
    ckt, sim, nets, handles = build_paper_simulator()
    for node in sim.graph.all_nodes():
        for succ in node.succs:
            assert succ.stage.seq >= node.stage.seq


def test_dump_graph_produces_dot():
    ckt, sim, nets, handles = build_paper_simulator()
    buf = io.StringIO()
    sim.dump_graph(buf)
    dot = buf.getvalue()
    assert dot.startswith("digraph")
    assert "->" in dot
    assert "sync" in dot


# ---------------------------------------------------------------------------
# circuit modifiers: removal and insertion (Figures 7-9)
# ---------------------------------------------------------------------------


def test_remove_gate_reconnects_and_sets_frontier():
    ckt, sim, nets, handles = build_paper_simulator()
    sim.update_state()
    assert sim.graph.frontiers == set()

    g8_stage = stage_of(sim, handles["G8"])
    g9_stage = stage_of(sim, handles["G9"])
    ckt.remove_gate(handles["G8"])

    # frontier = successors of the removed partitions (G9 partitions here)
    frontier_stages = {n.stage for n in sim.graph.frontiers}
    assert g9_stage in frontier_stages
    assert g8_stage not in sim.graph.stages
    # the removed stage's nodes are fully detached
    assert all(g8_stage is not n.stage for n in sim.graph.all_nodes())


def test_insert_gate_after_removal_matches_paper_frontier():
    """Figure 10(b): after remove(G8) + insert(G10) the affected set is
    G10's partitions plus G9's partitions (4 partitions, 24 amplitudes)."""
    ckt, sim, nets, handles = build_paper_simulator()
    sim.update_state()
    ckt.remove_gate(handles["G8"])
    g10 = ckt.insert_gate("cx", nets[3], 2, 1)
    affected = sim.graph.affected_nodes()
    labels = {(n.stage.label(), n.block_range.to_tuple()) for n in affected}
    g10_stage = stage_of(sim, g10)
    g9_stage = stage_of(sim, handles["G9"])
    assert {n.stage for n in affected} == {g10_stage, g9_stage}
    assert len(affected) == 4
    # G10 partitions span blocks [1,3] and [5,7] as in Figure 8
    assert node_ranges(sim.graph, g10_stage) == [(1, 3), (5, 7)]


def test_affected_nodes_cleared_after_update():
    ckt, sim, nets, handles = build_paper_simulator()
    sim.update_state()
    assert sim.graph.affected_nodes() == []
    ckt.remove_gate(handles["G7"])
    assert sim.graph.affected_nodes() != []
    sim.update_state()
    assert sim.graph.affected_nodes() == []


def test_removing_final_gate_affects_nothing_downstream():
    """Removing the last gate leaves no downstream partition to recompute;
    the output simply resolves through the remaining stages."""
    ckt, sim, nets, handles = build_paper_simulator()
    sim.update_state()
    ckt.remove_gate(handles["G9"])
    assert sim.graph.affected_nodes() == []
    sim.update_state()   # still a no-op, and the state query stays consistent
    assert abs(sum(abs(a) ** 2 for a in sim.state()) - 1.0) < 1e-9


def test_inserting_superposition_gate_into_existing_net_touches_stage():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
    net = ckt.insert_net()
    ckt.insert_gate("h", net, 0)
    sim.update_state()
    ckt.insert_gate("h", net, 2)   # joins the existing MatVecStage
    affected = sim.graph.affected_nodes()
    assert affected, "adding a gate to a matvec stage must mark it affected"
    assert all(isinstance(n.stage, MatVecStage) for n in affected)
    assert len(sim.graph.stages) == 1


def test_removing_one_of_two_superposition_gates_keeps_stage():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
    net = ckt.insert_net()
    h0 = ckt.insert_gate("h", net, 0)
    ckt.insert_gate("h", net, 2)
    sim.update_state()
    ckt.remove_gate(h0)
    assert len(sim.graph.stages) == 1
    assert sim.graph.affected_nodes(), "stage must be re-simulated"


def test_removing_last_superposition_gate_removes_stage():
    ckt = Circuit(3)
    sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
    net = ckt.insert_net()
    h0 = ckt.insert_gate("h", net, 0)
    sim.update_state()
    ckt.remove_gate(h0)
    assert sim.graph.stages == []


def test_remove_net_dismantles_all_its_stages():
    ckt, sim, nets, handles = build_paper_simulator()
    before = len(sim.graph.stages)
    ckt.remove_net(nets[0])   # the Hadamard net
    assert len(sim.graph.stages) == before - 1


def test_remove_stage_unknown_raises():
    graph = PartitionGraph(BlockRange(0, 7))
    stage = UnitaryStage(Gate("x", (0,)), 3, 4)
    with pytest.raises(KeyError):
        graph.remove_stage(stage)


def test_insert_stage_position_out_of_range():
    graph = PartitionGraph(BlockRange(0, 7))
    stage = UnitaryStage(Gate("x", (0,)), 3, 4)
    with pytest.raises(IndexError):
        graph.insert_stage(stage, 5)


def test_graph_stats_dict_keys():
    ckt, sim, nets, handles = build_paper_simulator()
    stats = sim.graph.stats().as_dict()
    assert set(stats) == {"num_stages", "num_nodes", "num_edges", "num_frontiers"}
