"""Backend parity: every kernel backend computes the same states.

The plan pipeline must be a pure execution-strategy change: for any circuit,
any knob combination (fusion, block directory, copy-on-write, block size)
and any modifier sequence, the batched backends, the legacy per-run path and
the dense oracle must agree to 1e-10.  Backends that need an unavailable
runtime (numba jit, fork) skip cleanly instead of failing.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro import QTask
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.kernels import (
    HAVE_NUMBA,
    NumbaBackend,
    NumpyBatchBackend,
    ProcessPoolBackend,
)
from repro.core.simulator import QTaskSimulator

from .conftest import circuit_levels, random_levels, reference_state

ATOL = 1e-10

# knob combinations exercising every structural code path the plan layer
# interacts with: fusion (FusedUnitaryStage emission), the block directory
# vs legacy store chain (reader construction), COW vs dense stores (the
# dense back-fill after a plan run) and block sizes from sub-gate to
# whole-state
KNOB_COMBOS = [
    pytest.param(
        dict(fusion=False, block_directory=True, copy_on_write=True, block_size=4),
        id="defaults-bs4",
    ),
    pytest.param(
        dict(fusion=True, block_directory=True, copy_on_write=True, block_size=4),
        id="fusion-bs4",
    ),
    pytest.param(
        dict(fusion=False, block_directory=False, copy_on_write=True, block_size=8),
        id="chain-bs8",
    ),
    pytest.param(
        dict(fusion=True, block_directory=False, copy_on_write=False, block_size=4),
        id="fusion-chain-dense-bs4",
    ),
    pytest.param(
        dict(fusion=False, block_directory=True, copy_on_write=False, block_size=16),
        id="dense-bs16",
    ),
]

BACKENDS = [
    pytest.param("legacy", id="legacy"),
    pytest.param("numpy", id="numpy"),
    pytest.param("numba-interp", id="numba-interp"),
    pytest.param(
        "numba-jit",
        id="numba-jit",
        marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed"),
    ),
    pytest.param(
        "process",
        id="process",
        marks=pytest.mark.skipif(
            not hasattr(os, "fork"), reason="fork start method unavailable"
        ),
    ),
]


def _install_backend(sim: QTaskSimulator, backend: str) -> None:
    """Put the requested backend on a simulator built with ``legacy``."""
    if backend == "legacy":
        return
    if backend == "numpy":
        sim._backend = NumpyBatchBackend()
    elif backend == "numba-interp":
        sim._backend = NumbaBackend(jit=False)
    elif backend == "numba-jit":
        sim._backend = NumbaBackend(jit=True)
    elif backend == "process":
        # forced shipping: two workers and no size threshold, so the
        # fork/SharedMemory path runs even for these tiny states
        sim._backend = ProcessPoolBackend(num_workers=2, min_ship_amps=0)
    else:  # pragma: no cover - parametrisation bug
        raise ValueError(backend)
    sim.kernel_backend = backend


def _build(levels, num_qubits, backend, knobs) -> QTaskSimulator:
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    sim = QTaskSimulator(circuit, kernel_backend="legacy", **knobs)
    _install_backend(sim, backend)
    return sim


# ---------------------------------------------------------------------------
# static circuits: backend == legacy == dense across every knob combo
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("knobs", KNOB_COMBOS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_random_circuit_matches_dense(backend, knobs):
    num_qubits = 6
    rng = random.Random(20260807)
    levels = random_levels(rng, num_qubits, 8)
    sim = _build(levels, num_qubits, backend, knobs)
    sim.update_state()
    expected = reference_state(num_qubits, levels)
    np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_insert_matches_dense(backend):
    num_qubits = 5
    rng = random.Random(7)
    levels = random_levels(rng, num_qubits, 5)
    sim = _build(levels, num_qubits, backend, dict(block_size=4))
    sim.update_state()
    # grow the circuit after the first update: the dirty frontier is a
    # suffix cone, so plans now cover a strict subset of the stages
    net = sim.circuit.insert_net()
    sim.circuit.insert_gate("cx", net, 0, num_qubits - 1)
    net2 = sim.circuit.insert_net()
    sim.circuit.insert_gate("rz", net2, 2, params=[0.917])
    sim.update_state()
    expected = reference_state(num_qubits, circuit_levels(sim.circuit))
    np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)


# ---------------------------------------------------------------------------
# update_gate retunes: the variational workload the batching targets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "knobs",
    [
        pytest.param(dict(block_size=4), id="defaults"),
        pytest.param(dict(block_size=4, fusion=True), id="fusion"),
        pytest.param(dict(block_size=8, copy_on_write=False), id="dense-bs8"),
    ],
)
@pytest.mark.parametrize("backend", BACKENDS)
def test_retune_sequence_matches_dense(backend, knobs):
    num_qubits = 5
    circuit = Circuit(num_qubits)
    handles = []
    levels = []
    for layer in range(3):
        levels.append([Gate("h", (q,)) for q in range(num_qubits)])
        levels.append(
            [Gate("rz", (q,), (0.1 + 0.2 * layer + 0.05 * q,)) for q in range(num_qubits)]
        )
        levels.append([Gate("cx", (q, q + 1)) for q in range(0, num_qubits - 1, 2)])
    circuit.from_levels(levels)
    sim = QTaskSimulator(circuit, kernel_backend="legacy", **knobs)
    _install_backend(sim, backend)
    sim.update_state()
    handles = [h for h in circuit.gates() if h.gate.name == "rz"]
    rng = random.Random(3)
    for step in range(3):
        for h in rng.sample(handles, 4):
            circuit.update_gate(h, rng.uniform(0, 2 * np.pi))
        sim.update_state()
        expected = reference_state(num_qubits, circuit_levels(circuit))
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)


# ---------------------------------------------------------------------------
# dynamic circuits: identical trajectories under every backend
# ---------------------------------------------------------------------------


def _dynamic_session(seed, backend, **knobs) -> QTask:
    knobs.setdefault("block_size", 4)
    ckt = QTask(3, num_clbits=2, seed=seed, kernel_backend="legacy", **knobs)
    n1, n2, n3, n4, n5 = (ckt.insert_net() for _ in range(5))
    ckt.insert_gate("h", n1, 0)
    ckt.insert_gate("cx", n2, 0, 1)
    ckt.insert_gate("ry", n2, 2, params=[0.77])
    ckt.measure(n3, 0, 0)
    ckt.c_if("x", n4, 2, condition=((0,), 1))
    ckt.reset(n4, 1)
    ckt.measure(n5, 2, 1)
    _install_backend(ckt.simulator, backend)
    return ckt


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_dynamic_trajectory_matches_legacy(backend, seed):
    ref = _dynamic_session(seed, "legacy")
    ref.update_state()
    got = _dynamic_session(seed, backend)
    got.update_state()
    assert got.outcomes.get_bit(0) == ref.outcomes.get_bit(0)
    assert got.outcomes.get_bit(1) == ref.outcomes.get_bit(1)
    np.testing.assert_allclose(got.state(), ref.state(), atol=ATOL, rtol=0)
    assert np.linalg.norm(got.state()) == pytest.approx(1.0, abs=1e-9)
    got.close()
    ref.close()


# ---------------------------------------------------------------------------
# COW forks: children on any backend agree with their own dense oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_forked_sessions_match_dense(backend):
    num_qubits = 5
    rng = random.Random(99)
    levels = random_levels(rng, num_qubits, 6)
    sim = _build(levels, num_qubits, backend, dict(block_size=4))
    sim.update_state()
    handles = [h for h in sim.circuit.gates() if h.gate.params]
    if not handles:
        net = sim.circuit.insert_net()
        handles = [sim.circuit.insert_gate("rz", net, 0, params=[0.4])]
        sim.update_state()
    child = sim.fork()
    mirrored = child.circuit.gates()[sim.circuit.gates().index(handles[0])]
    child.circuit.update_gate(mirrored, 2.468)
    child.update_state()
    np.testing.assert_allclose(
        child.state(),
        reference_state(num_qubits, circuit_levels(child.circuit)),
        atol=ATOL,
        rtol=0,
    )
    # the parent's state is untouched by the child's retune
    np.testing.assert_allclose(
        sim.state(),
        reference_state(num_qubits, circuit_levels(sim.circuit)),
        atol=ATOL,
        rtol=0,
    )


# ---------------------------------------------------------------------------
# executor interplay: plan chunking across a real worker pool
# ---------------------------------------------------------------------------


def test_plan_chunking_on_work_stealing_pool():
    from repro.parallel import WorkStealingExecutor

    num_qubits = 6
    rng = random.Random(5)
    levels = random_levels(rng, num_qubits, 8)
    executor = WorkStealingExecutor(4)
    try:
        circuit = Circuit(num_qubits)
        circuit.from_levels(levels)
        sim = QTaskSimulator(
            circuit, block_size=4, executor=executor, kernel_backend="numpy"
        )
        sim.update_state()
        expected = reference_state(num_qubits, levels)
        np.testing.assert_allclose(sim.state(), expected, atol=ATOL, rtol=0)
        # wide executor -> tables split into multiple chunk subflows
        assert sim.plan_report().plan_chunks >= sim.plan_report().plans_built
    finally:
        executor.close()
