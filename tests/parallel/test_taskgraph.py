"""Tests for the Taskflow-style task graph model."""

import pytest

from repro.core.exceptions import ExecutorError
from repro.parallel import Task, TaskGraph


def test_emplace_and_len():
    g = TaskGraph("g")
    a = g.emplace(lambda: None, "a")
    b = g.emplace(lambda: None, "b")
    assert len(g) == 2
    assert {t.name for t in g.tasks} == {"a", "b"}


def test_precede_and_succeed_build_edges():
    g = TaskGraph()
    a, b, c = (g.emplace(lambda: None, n) for n in "abc")
    a.precede(b, c)
    c.succeed(b)
    assert set(a.successors) == {b, c}
    assert b.successors == [c]
    assert set(c.predecessors) == {a, b}
    assert g.num_edges() == 3


def test_precede_self_raises():
    g = TaskGraph()
    a = g.emplace(lambda: None)
    with pytest.raises(ExecutorError):
        a.precede(a)


def test_duplicate_edges_ignored():
    g = TaskGraph()
    a, b = g.emplace(lambda: None), g.emplace(lambda: None)
    a.precede(b)
    a.precede(b)
    assert g.num_edges() == 1


def test_sources_and_sinks():
    g = TaskGraph()
    a, b, c = (g.emplace(lambda: None, n) for n in "abc")
    a.precede(b)
    b.precede(c)
    assert g.sources() == [a]
    assert g.sinks() == [c]


def test_topological_order_respects_edges():
    g = TaskGraph()
    tasks = [g.emplace(lambda: None, str(i)) for i in range(6)]
    tasks[0].precede(tasks[2])
    tasks[1].precede(tasks[2])
    tasks[2].precede(tasks[3], tasks[4])
    tasks[4].precede(tasks[5])
    order = {t.name: i for i, t in enumerate(g.topological_order())}
    assert order["0"] < order["2"] < order["3"]
    assert order["1"] < order["2"] < order["4"] < order["5"]


def test_validate_detects_cycle():
    g = TaskGraph()
    a, b = g.emplace(lambda: None), g.emplace(lambda: None)
    a.precede(b)
    b.precede(a)
    with pytest.raises(ExecutorError):
        g.validate()


def test_validate_passes_for_dag():
    g = TaskGraph()
    a, b = g.emplace(lambda: None), g.emplace(lambda: None)
    a.precede(b)
    g.validate()


def test_placeholder_has_no_callable():
    g = TaskGraph()
    sync = g.placeholder("sync-1")
    assert sync.fn is None
    assert sync.run() is None


def test_task_run_returns_subflow_list():
    calls = []
    t = Task(lambda: [lambda: calls.append(1), lambda: calls.append(2)])
    sub = t.run()
    assert len(sub) == 2
    for fn in sub:
        fn()
    assert sorted(calls) == [1, 2]


def test_task_run_single_callable_becomes_subflow():
    t = Task(lambda: (lambda: 42))
    sub = t.run()
    assert len(sub) == 1 and callable(sub[0])


def test_task_run_non_callable_return_ignored():
    t = Task(lambda: "not a subflow")
    assert t.run() is None


def test_to_dot_contains_nodes_and_edges():
    g = TaskGraph("demo")
    a, b = g.emplace(lambda: None, "a"), g.emplace(lambda: None, "b")
    a.precede(b)
    dot = g.to_dot()
    assert '"a" -> "b";' in dot
    assert dot.startswith('digraph "demo"')


def test_add_external_task():
    g = TaskGraph()
    t = Task(lambda: None, "ext")
    g.add(t)
    assert t in g.tasks and t.graph is g
