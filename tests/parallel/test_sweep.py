"""Tests for the batched parameter-sweep scheduler (SweepRunner)."""

import numpy as np
import pytest

from repro import QTask, SweepRunner

N_QUBITS = 5
OBSERVABLE = "Z" * N_QUBITS


def _build(session):
    n = session.num_qubits
    net_h = session.insert_net()
    for q in range(n):
        session.insert_gate("h", net_h, q)
    net_cx = session.insert_net()
    for q in range(n - 1):
        net = session.insert_net()
        session.insert_gate("cx", net, q, q + 1)
    net_rz = session.insert_net()
    rz = [
        session.insert_gate("rz", net_rz, q, params=[0.4]) for q in range(n)
    ]
    net_rx = session.insert_net()
    rx = [
        session.insert_gate("rx", net_rx, q, params=[0.7]) for q in range(n)
    ]
    return rz + rx


def _grid(handles, steps):
    return [
        tuple(0.1 + 0.07 * s + 0.01 * i for i in range(len(handles)))
        for s in range(steps)
    ]


def _sequential_reference(points, handles_builder=_build):
    """The PR 3-style loop: one session, retune + update per point."""
    with QTask(N_QUBITS, num_workers=1) as session:
        handles = handles_builder(session)
        session.update_state()
        session.expectation(OBSERVABLE)
        out = []
        for point in points:
            for h, v in zip(handles, point):
                session.update_gate(h, v)
            session.update_state()
            out.append(session.expectation(OBSERVABLE))
        return out


@pytest.mark.parametrize("num_workers", [1, 4])
def test_sweep_matches_sequential_reference(num_workers):
    with QTask(N_QUBITS, num_workers=num_workers) as session:
        handles = _build(session)
        session.update_state()
        session.expectation(OBSERVABLE)
        points = _grid(handles, 9)
        with SweepRunner(session, handles, observable=OBSERVABLE) as runner:
            results = runner.run(points)
        expected = _sequential_reference(points)
        assert [r.index for r in results] == list(range(len(points)))
        assert [r.params for r in results] == points
        for r, e in zip(results, expected):
            assert r.expectation == pytest.approx(e, abs=1e-10)


def test_sweep_gathers_in_submission_order_across_forks():
    with QTask(N_QUBITS, num_workers=4) as session:
        handles = _build(session)
        points = _grid(handles, 11)
        with SweepRunner(session, handles, observable=OBSERVABLE) as runner:
            results = runner.run(points)
            assert runner.active_forks > 1
            assert [r.index for r in results] == list(range(11))
            # every fleet member served a share of the grid
            assert {r.fork for r in results} == set(range(runner.active_forks))


def test_sweep_results_independent_of_fleet_size():
    with QTask(N_QUBITS, num_workers=4) as session:
        handles = _build(session)
        points = _grid(handles, 6)
        with SweepRunner(session, handles, observable=OBSERVABLE,
                         num_forks=1) as solo:
            solo_results = solo.run(points, shots=128, seed=99)
        with SweepRunner(session, handles, observable=OBSERVABLE,
                         num_forks=3) as fleet:
            fleet_results = fleet.run(points, shots=128, seed=99)
        for a, b in zip(solo_results, fleet_results):
            assert a.expectation == pytest.approx(b.expectation, abs=1e-10)
            # shot seeds are per point index, so histograms agree too
            assert a.counts == b.counts


def test_sweep_per_point_updates_are_incremental():
    with QTask(N_QUBITS, num_workers=2) as session:
        handles = _build(session)
        session.update_state()
        with SweepRunner(session, handles, observable=OBSERVABLE) as runner:
            results = runner.run(_grid(handles, 4))
        assert all(0.0 < r.affected_fraction < 1.0 for r in results)


def test_sweep_scalar_points_and_observable_override():
    with QTask(N_QUBITS, num_workers=1) as session:
        net = session.insert_net()
        g = session.insert_gate("rx", net, 0, params=[0.1])
        session.update_state()
        with SweepRunner(session, [g]) as runner:
            # scalar points (one handle), observable passed at run() time
            results = runner.run([0.0, np.pi], observable="I" * 4 + "Z")
        assert results[0].expectation == pytest.approx(1.0, abs=1e-10)
        assert results[1].expectation == pytest.approx(-1.0, abs=1e-10)
        assert results[0].counts is None


def test_sweep_without_observable_returns_counts_only():
    with QTask(N_QUBITS, num_workers=1) as session:
        handles = _build(session)
        session.update_state()
        with SweepRunner(session, handles) as runner:
            results = runner.run(_grid(handles, 2), shots=64, seed=5)
        for r in results:
            assert r.expectation is None
            assert sum(r.counts.values()) == 64


def test_sweep_validation_and_lifecycle():
    with QTask(N_QUBITS, num_workers=1) as session:
        handles = _build(session)
        session.update_state()
        runner = SweepRunner(session, handles, observable=OBSERVABLE)
        assert runner.run([]) == []
        with pytest.raises(ValueError, match="parameter entries"):
            runner.run([(0.1,)])  # wrong arity
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.run(_grid(handles, 1))
        with pytest.raises(ValueError, match="num_forks"):
            SweepRunner(session, handles, num_forks=0)


def test_sweep_fleet_refreshes_after_parent_edits():
    """Parent edits between run() calls must not be served from stale forks."""
    with QTask(N_QUBITS, num_workers=2) as session:
        net = session.insert_net()
        g = session.insert_gate("rx", net, 0, params=[0.2])
        session.update_state()
        obs = "I" * 4 + "Z"
        with SweepRunner(session, [g], observable=obs) as runner:
            first = runner.run([(0.0,), (0.0,)])
            assert first[0].expectation == pytest.approx(1.0, abs=1e-10)
            # Edit the base session: flip qubit 0 -- <Z> changes sign.
            net2 = session.insert_net()
            session.insert_gate("x", net2, 0)
            session.update_state()
            second = runner.run([(0.0,), (0.0,)])
            assert second[0].expectation == pytest.approx(-1.0, abs=1e-10)
            # A pending (un-updated) edit is detected too.
            net3 = session.insert_net()
            session.insert_gate("x", net3, 0)
            third = runner.run([(0.0,), (0.0,)])
            assert third[0].expectation == pytest.approx(1.0, abs=1e-10)
            # No edits: the fleet is reused, not rebuilt.
            fleet = [child for child, _ in runner._forks]
            runner.run([(0.1,), (0.2,)])
            assert [child for child, _ in runner._forks] == fleet


def test_sweep_nested_parallelism_matches_default():
    """Forks updating on the shared pool (nested runs) give equal results."""
    with QTask(N_QUBITS, num_workers=4) as session:
        handles = _build(session)
        session.update_state()
        points = _grid(handles, 5)
        with SweepRunner(session, handles, observable=OBSERVABLE,
                         nested_parallelism=True) as nested:
            nested_results = nested.run(points)
        with SweepRunner(session, handles, observable=OBSERVABLE) as flat:
            flat_results = flat.run(points)
        for a, b in zip(nested_results, flat_results):
            assert a.expectation == pytest.approx(b.expectation, abs=1e-10)


def test_sweep_exceptions_propagate():
    with QTask(N_QUBITS, num_workers=2) as session:
        handles = _build(session)
        session.update_state()
        with SweepRunner(session, [handles[0]],
                         observable=OBSERVABLE) as runner:
            with pytest.raises(Exception):
                # rz takes one parameter; a 2-tuple must blow up in the task
                runner.run([((0.1, 0.2),), ((0.3, 0.4),)])
