"""Dedicated coverage for :mod:`repro.parallel.workqueue` (steal deques)."""

from __future__ import annotations

import threading

import pytest

from repro.parallel.workqueue import StealScheduler, WorkDeque


class TestWorkDeque:
    def test_empty_pop_and_steal(self):
        d = WorkDeque()
        assert d.pop() is None
        assert d.steal() is None
        assert len(d) == 0

    def test_owner_pop_is_lifo(self):
        d = WorkDeque()
        for i in range(3):
            d.push(i)
        assert [d.pop(), d.pop(), d.pop()] == [2, 1, 0]

    def test_thief_steal_is_fifo(self):
        d = WorkDeque()
        for i in range(3):
            d.push(i)
        assert [d.steal(), d.steal(), d.steal()] == [0, 1, 2]

    def test_mixed_ends(self):
        d = WorkDeque()
        for i in range(4):
            d.push(i)
        assert d.steal() == 0   # oldest from the top
        assert d.pop() == 3     # newest from the bottom
        assert len(d) == 2


class TestStealScheduler:
    def test_external_push_lands_in_overflow(self):
        s = StealScheduler(2)
        s.push("a")                   # no worker: external queue
        s.push("b", worker=5)         # out-of-range worker: external queue
        assert s.outstanding() == 2
        # any worker can take external work
        assert s.take(1, [1]) in {"a", "b"}

    def test_own_deque_preferred(self):
        s = StealScheduler(2)
        s.push("external")
        s.push("mine", worker=0)
        assert s.take(0, [1]) == "mine"
        assert s.take(0, [1]) == "external"
        assert s.take(0, [1]) is None

    def test_steal_from_victim(self):
        s = StealScheduler(3)
        s.push("w2-old", worker=2)
        s.push("w2-new", worker=2)
        # worker 0 has nothing: it steals from a victim.  Victim selection is
        # randomised and may miss in one sweep, so callers retry -- but the
        # first successful steal must take the victim's *oldest* item.
        state = [7]
        item = None
        for _ in range(32):
            item = s.take(0, state)
            if item is not None:
                break
        assert item == "w2-old"

    def test_single_worker_never_steals(self):
        s = StealScheduler(1)
        assert s.take(0, [1]) is None
        s.push("x", worker=0)
        assert s.take(0, [1]) == "x"

    def test_rng_state_advances(self):
        s = StealScheduler(4)
        state = [12345]
        assert s.take(0, state) is None  # full sweep of victims
        assert state[0] != 12345

    def test_outstanding_counts_everything(self):
        s = StealScheduler(2)
        s.push("a", worker=0)
        s.push("b", worker=1)
        s.push("c")
        assert s.outstanding() == 3
        s.take(0, [1])
        assert s.outstanding() == 2

    def test_concurrent_drain_is_exact(self):
        """All pushed items are taken exactly once under contention."""
        workers = 4
        per_worker = 200
        s = StealScheduler(workers)
        for w in range(workers):
            for i in range(per_worker):
                s.push((w, i), worker=w)
        taken = [[] for _ in range(workers)]

        def drain(w):
            state = [w + 1]
            while True:
                item = s.take(w, state)
                if item is None:
                    if s.outstanding() == 0:
                        return
                    continue
                taken[w].append(item)

        threads = [threading.Thread(target=drain, args=(w,)) for w in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [x for chunk in taken for x in chunk]
        assert len(flat) == workers * per_worker
        assert len(set(flat)) == len(flat)  # no duplicates
