"""High-contention and determinism tests for the executors.

These tests pin down two subtle executor behaviours:

* the subflow join counter must tolerate *nested* spawns racing finishing
  siblings (the ``_Join.add_children`` lock -- an unlocked ``remaining +=``
  either loses the increment, hanging the join, or lets ``on_done`` fire
  before the new children ran);
* spawned subflow children execute in spawn order on both executors, so
  order-sensitive subflows cannot diverge between ``SequentialExecutor``
  and a single-worker ``WorkStealingExecutor``;
* ``run`` is re-entrant: nested runs issued from worker threads and
  concurrent runs from external threads both complete (the execution model
  behind forked-session sweeps).

CI runs this module with ``num_workers >= 4`` (the stress tests hard-code a
4-worker pool) so the join race cannot silently regress.
"""

import sys
import threading

import pytest

from repro.parallel import (
    SequentialExecutor,
    TaskGraph,
    WorkStealingExecutor,
)

STRESS_WORKERS = 4  # keep >= 4: the join race needs real contention


# ---------------------------------------------------------------------------
# nested-subflow join race
# ---------------------------------------------------------------------------


def _nested_subflow_graph(num_children, num_grandchildren, counter, observed):
    """One parent spawning children that each spawn nested grandchildren.

    Every child/grandchild bumps ``counter``; the parent's successor
    records the count it observes.  The join must not release the
    successor until every (grand)child ran.
    """
    lock = threading.Lock()

    def bump():
        with lock:
            counter[0] += 1

    def make_grandchild():
        def grandchild():
            bump()
        return grandchild

    def make_child():
        def child():
            bump()
            # Nested spawn: these join the *same* parent join counter,
            # racing the locked decrements of finishing siblings.
            return [make_grandchild() for _ in range(num_grandchildren)]
        return child

    def parent():
        return [make_child() for _ in range(num_children)]

    graph = TaskGraph("nested-stress")
    p = graph.emplace(parent, "parent")
    succ = graph.emplace(lambda: observed.append(counter[0]), "after-join")
    p.precede(succ)
    return graph


def test_nested_subflow_join_survives_high_contention():
    """A racy join increment loses children (hang) or fires early."""
    num_children, num_grandchildren, rounds = 24, 4, 25
    expected = num_children * (1 + num_grandchildren)
    ex = WorkStealingExecutor(STRESS_WORKERS)
    old_interval = sys.getswitchinterval()
    # Force thread switches at nearly every bytecode so the unlocked
    # read-modify-write window is actually hit.
    sys.setswitchinterval(1e-6)
    try:
        for round_no in range(rounds):
            counter = [0]
            observed = []
            graph = _nested_subflow_graph(
                num_children, num_grandchildren, counter, observed
            )
            runner = threading.Thread(target=ex.run, args=(graph,), daemon=True)
            runner.start()
            runner.join(timeout=60.0)
            assert not runner.is_alive(), (
                f"round {round_no}: run() hung -- the subflow join lost an "
                "increment under contention"
            )
            assert observed == [expected], (
                f"round {round_no}: successor released after "
                f"{observed} of {expected} children -- join fired early"
            )
            assert counter[0] == expected
    finally:
        sys.setswitchinterval(old_interval)
        ex.close()


def test_join_counter_mutations_always_hold_the_lock(monkeypatch):
    """Every mutation of a join's ``remaining`` must hold ``_Join.lock``.

    The historical bug -- ``work.parent.remaining += len(extra)`` without
    the lock -- is only *observably* racy on interpreters that preempt
    between the attribute load and store (CPython <= 3.10 and free-threaded
    builds; 3.11+ never checks the eval breaker around C calls, making the
    faulty line coincidentally quasi-atomic).  This white-box check fails
    deterministically on any unlocked mutation, independent of scheduler
    luck: it swaps in an instrumented ``_Join`` whose counter records
    whether the current thread held the lock at every write.
    """
    from repro.parallel import executor as executor_mod

    violations = []

    class TrackingLock:
        def __init__(self):
            self._lock = threading.Lock()
            self._owner = None

        def __enter__(self):
            self._lock.acquire()
            self._owner = threading.get_ident()
            return self

        def __exit__(self, *exc):
            self._owner = None
            self._lock.release()

        def held_by_me(self):
            return self._owner == threading.get_ident()

    class InstrumentedJoin(executor_mod._Join):
        __slots__ = ("_rem",)

        def __init__(self, remaining, on_done):
            self.lock = TrackingLock()
            self._rem = remaining
            self.on_done = on_done

        @property
        def remaining(self):
            return self._rem

        @remaining.setter
        def remaining(self, value):
            if not self.lock.held_by_me():
                violations.append(value)
            self._rem = value

    monkeypatch.setattr(executor_mod, "_Join", InstrumentedJoin)

    counter = [0]
    observed = []
    graph = _nested_subflow_graph(8, 3, counter, observed)
    ex = WorkStealingExecutor(STRESS_WORKERS)
    try:
        ex.run(graph)
    finally:
        ex.close()
    assert observed == [8 * 4]
    assert not violations, (
        f"{len(violations)} join-counter mutation(s) happened without "
        "holding _Join.lock"
    )


def test_deeply_nested_subflows_join_once():
    """Chains of nested spawns all fold into one parent join."""
    depth, width = 5, 3
    counter = [0]
    lock = threading.Lock()

    def make(level):
        def body():
            with lock:
                counter[0] += 1
            if level < depth:
                return [make(level + 1) for _ in range(1 if level else width)]
        return body

    order = []
    graph = TaskGraph()
    p = graph.emplace(make(0), "root")
    succ = graph.emplace(lambda: order.append(counter[0]), "after")
    p.precede(succ)
    ex = WorkStealingExecutor(STRESS_WORKERS)
    try:
        ex.run(graph)
    finally:
        ex.close()
    expected = 1 + width * depth
    assert order == [expected]


# ---------------------------------------------------------------------------
# spawn-order determinism
# ---------------------------------------------------------------------------


def _order_graph(log):
    def make_grandchild(tag):
        def grandchild():
            log.append(tag)
        return grandchild

    def make_child(i):
        def child():
            log.append(f"c{i}")
            return [make_grandchild(f"c{i}.g{j}") for j in range(2)]
        return child

    def parent():
        log.append("p")
        return [make_child(i) for i in range(4)]

    graph = TaskGraph("order")
    graph.emplace(parent, "parent")
    return graph


EXPECTED_ORDER = ["p"] + [
    item for i in range(4) for item in (f"c{i}", f"c{i}.g0", f"c{i}.g1")
]


@pytest.mark.parametrize(
    "factory",
    [SequentialExecutor, lambda: WorkStealingExecutor(1)],
    ids=["sequential", "work-stealing-1"],
)
def test_subflow_children_run_in_spawn_order(factory):
    """Children (and nested children) execute depth-first in spawn order."""
    log = []
    ex = factory()
    try:
        ex.run(_order_graph(log))
    finally:
        ex.close()
    assert log == EXPECTED_ORDER


def test_sequential_and_single_worker_observe_identical_order():
    """The determinism contract: both executors see one child schedule."""
    seq_log, ws_log = [], []
    SequentialExecutor().run(_order_graph(seq_log))
    ex = WorkStealingExecutor(1)
    try:
        ex.run(_order_graph(ws_log))
    finally:
        ex.close()
    assert seq_log == ws_log == EXPECTED_ORDER


# ---------------------------------------------------------------------------
# re-entrant / concurrent runs (the forked-session execution model)
# ---------------------------------------------------------------------------


def test_nested_run_from_worker_threads():
    """map inside map: a worker issuing run() helps instead of blocking."""
    ex = WorkStealingExecutor(STRESS_WORKERS)
    try:
        def outer(x):
            return sum(ex.map(lambda y: y + x, range(6)))

        out = ex.map(outer, range(12))
    finally:
        ex.close()
    assert out == [sum(y + x for y in range(6)) for x in range(12)]


def test_nested_run_propagates_exceptions():
    ex = WorkStealingExecutor(2)

    def outer(x):
        def inner(y):
            if y == 3:
                raise RuntimeError("inner boom")
            return y

        return ex.map(inner, range(5))

    try:
        with pytest.raises(RuntimeError, match="inner boom"):
            ex.map(outer, range(4))
    finally:
        ex.close()


def test_concurrent_runs_from_external_threads():
    """Independent graphs share one pool without interference."""
    ex = WorkStealingExecutor(STRESS_WORKERS)
    results = {}
    errors = []

    def run_one(k):
        try:
            results[k] = ex.map(lambda x, k=k: x * k, range(50))
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=run_one, args=(k,)) for k in range(1, 6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
    finally:
        ex.close()
    assert not errors
    for k in range(1, 6):
        assert results[k] == [x * k for x in range(50)]
