"""Test package."""
