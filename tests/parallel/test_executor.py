"""Tests for the sequential and work-stealing executors."""

import threading
import time

import pytest

from repro.core.exceptions import ExecutorError
from repro.parallel import (
    SequentialExecutor,
    TaskGraph,
    WorkStealingExecutor,
    chunk_indices,
    make_executor,
    parallel_for,
)
from repro.parallel.workqueue import StealScheduler, WorkDeque

EXECUTOR_FACTORIES = [
    lambda: SequentialExecutor(),
    lambda: WorkStealingExecutor(2),
    lambda: WorkStealingExecutor(4),
]


def diamond_graph(log):
    g = TaskGraph("diamond")
    a = g.emplace(lambda: log.append("a"), "a")
    b = g.emplace(lambda: log.append("b"), "b")
    c = g.emplace(lambda: log.append("c"), "c")
    d = g.emplace(lambda: log.append("d"), "d")
    a.precede(b, c)
    d.succeed(b, c)
    return g


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_respects_dependencies(factory):
    log = []
    ex = factory()
    try:
        ex.run(diamond_graph(log))
    finally:
        ex.close()
    assert sorted(log) == ["a", "b", "c", "d"]
    assert log[0] == "a" and log[-1] == "d"


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_runs_every_task_once(factory):
    counter = {"n": 0}
    lock = threading.Lock()
    g = TaskGraph()

    def bump():
        with lock:
            counter["n"] += 1

    tasks = [g.emplace(bump, f"t{i}") for i in range(50)]
    for i in range(1, 50):
        tasks[i - 1].precede(tasks[i])
    ex = factory()
    try:
        ex.run(g)
    finally:
        ex.close()
    assert counter["n"] == 50


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_subflow_joins_before_successors(factory):
    """A task spawning a subflow must complete all children before its succs."""
    seen = []
    lock = threading.Lock()
    g = TaskGraph()

    def parent():
        return [lambda i=i: seen.append(f"child{i}") for i in range(8)]

    p = g.emplace(parent, "parent")
    after = g.emplace(lambda: seen.append("after"), "after")
    p.precede(after)
    ex = factory()
    try:
        ex.run(g)
    finally:
        ex.close()
    assert seen[-1] == "after"
    assert sorted(seen[:-1]) == [f"child{i}" for i in range(8)]


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_map_preserves_order(factory):
    ex = factory()
    try:
        out = ex.map(lambda x: x * x, list(range(37)))
    finally:
        ex.close()
    assert out == [x * x for x in range(37)]


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_map_empty(factory):
    ex = factory()
    try:
        assert ex.map(lambda x: x, []) == []
    finally:
        ex.close()


@pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
def test_executor_empty_graph(factory):
    ex = factory()
    try:
        ex.run(TaskGraph())
    finally:
        ex.close()


def test_work_stealing_executor_propagates_exceptions():
    g = TaskGraph()

    def boom():
        raise ValueError("boom")

    g.emplace(boom)
    ex = WorkStealingExecutor(2)
    try:
        with pytest.raises(ValueError, match="boom"):
            ex.run(g)
    finally:
        ex.close()


def test_sequential_executor_nested_subflows():
    seen = []
    g = TaskGraph()

    def parent():
        def child():
            return [lambda: seen.append("grandchild")]
        return [child]

    g.emplace(parent)
    SequentialExecutor().run(g)
    assert seen == ["grandchild"]


def test_work_stealing_executor_actually_uses_threads():
    g = TaskGraph()
    threads = set()
    lock = threading.Lock()

    def record():
        with lock:
            threads.add(threading.current_thread().name)
        time.sleep(0.01)

    for i in range(16):
        g.emplace(record)
    ex = WorkStealingExecutor(4)
    try:
        ex.run(g)
    finally:
        ex.close()
    assert len(threads) >= 2


def test_executor_rejects_cyclic_graph():
    g = TaskGraph()
    a, b = g.emplace(lambda: None), g.emplace(lambda: None)
    a.precede(b)
    b.precede(a)
    with pytest.raises(ExecutorError):
        SequentialExecutor().run(g)


def test_make_executor_selects_implementation():
    assert isinstance(make_executor(1), SequentialExecutor)
    assert isinstance(make_executor(0), SequentialExecutor)
    ex = make_executor(3)
    try:
        assert isinstance(ex, WorkStealingExecutor)
        assert ex.num_workers == 3
    finally:
        ex.close()


def test_executor_context_manager():
    with make_executor(2) as ex:
        assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]


# ---------------------------------------------------------------------------
# parallel_for and chunking
# ---------------------------------------------------------------------------


def test_chunk_indices_covers_range_exactly():
    chunks = chunk_indices(10, 3)
    assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_chunk_indices_validation():
    with pytest.raises(ValueError):
        chunk_indices(-1, 3)
    with pytest.raises(ValueError):
        chunk_indices(10, 0)


def test_chunk_indices_empty_total():
    assert chunk_indices(0, 4) == []


@pytest.mark.parametrize("workers", [None, 1, 3])
def test_parallel_for_visits_every_index_once(workers):
    hits = [0] * 100
    lock = threading.Lock()

    def body(start, stop):
        with lock:
            for i in range(start, stop):
                hits[i] += 1

    ex = None if workers is None else make_executor(workers)
    try:
        parallel_for(body, 100, 7, ex)
    finally:
        if ex:
            ex.close()
    assert hits == [1] * 100


# ---------------------------------------------------------------------------
# work-stealing deques
# ---------------------------------------------------------------------------


def test_work_deque_lifo_pop_fifo_steal():
    d = WorkDeque()
    for i in range(3):
        d.push(i)
    assert d.pop() == 2          # owner pops newest
    assert d.steal() == 0        # thief steals oldest
    assert len(d) == 1


def test_work_deque_empty_returns_none():
    d = WorkDeque()
    assert d.pop() is None and d.steal() is None


def test_steal_scheduler_takes_own_then_external_then_steals():
    sched = StealScheduler(2)
    sched.push("own", worker=0)
    sched.push("external")          # no worker -> overflow queue
    sched.push("victim", worker=1)
    rng = [1]
    assert sched.take(0, rng) == "own"
    assert sched.take(0, rng) == "external"
    assert sched.take(0, rng) == "victim"
    assert sched.take(0, rng) is None
    assert sched.outstanding() == 0
